//! Fleet result aggregation: per-cell steady-state metrics, per-policy
//! comparison summaries, table rendering and the JSON artifact.
//!
//! Metric definitions follow the paper's evaluation (§9):
//!
//! - **TTFT** (time to first token) per request is queue time + prefill
//!   latency — everything before the first output token exists.
//! - **TPOT** (time per output token) is the decode-phase latency spread
//!   over the generated tokens.
//! - **SLO attainment** is within-SLO completions over *offered* load in
//!   the measured window (a system that sheds load cannot look good by
//!   completing only what it kept).
//! - All steady-state metrics exclude the warmup window, so deployment
//!   cold start does not pollute the comparison.

use flexpipe_metrics::{fmt_f, fmt_pct, fmt_secs, Digest, Table};
use flexpipe_serving::RunReport;
use flexpipe_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::spec::{Cell, SweepSpec};

/// Steady-state metrics of one executed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellMetrics {
    /// Requests offered (arrivals in the measured window).
    pub offered: usize,
    /// Requests completed in the measured window.
    pub completed: usize,
    /// Completions within SLO in the measured window.
    pub within_slo: usize,
    /// Within-SLO completions / offered (the goodput ratio).
    pub slo_attainment: f64,
    /// Within-SLO completions per second.
    pub goodput_per_sec: f64,
    /// Median time-to-first-token, seconds.
    pub p50_ttft: f64,
    /// 99th-percentile time-to-first-token, seconds.
    pub p99_ttft: f64,
    /// Median time-per-output-token, seconds.
    pub p50_tpot: f64,
    /// 99th-percentile time-per-output-token, seconds.
    pub p99_tpot: f64,
    /// Median end-to-end latency, seconds.
    pub p50_latency: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub p99_latency: f64,
    /// Inflight refactors completed over the whole run.
    pub refactors: u32,
    /// Total refactor switchover pause, seconds.
    pub refactor_pause_secs: f64,
    /// Mean GPUs held over the run.
    pub mean_gpus_held: f64,
    /// Instances spawned over the run.
    pub spawns: u32,
    /// Capacity-revocation events executed.
    pub revocations: u32,
    /// In-flight requests destroyed by revocations and replayed.
    pub requests_replayed: u32,
    /// Tokens of work discarded by revocations.
    pub tokens_lost: u64,
    /// Mean time-to-recover per revocation, seconds (0 without chaos).
    pub mean_ttr_secs: f64,
    /// Worst time-to-recover, seconds.
    pub max_ttr_secs: f64,
    /// Completions landing inside a disruption recovery window.
    pub disrupted_completed: usize,
    /// Of those, completions still within their SLO (the per-disruption
    /// SLO-violation window in ratio form).
    pub disrupted_within_slo: usize,
    /// Simulation events processed.
    pub events: u64,
    /// Whether the cell hit its step budget (watchdog truncation).
    pub truncated: bool,
    /// Whether the cell's engine run panicked (metrics are zeroed).
    /// Distinct from [`CellMetrics::truncated`]: a failed cell needs a
    /// bug fix, a truncated one needs a bigger step budget.
    pub failed: bool,
}

/// One executed cell: its coordinate plus measured metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The grid coordinate.
    pub cell: Cell,
    /// Steady-state measurements.
    pub metrics: CellMetrics,
}

/// Aggregate of one policy across every cell it ran in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySummary {
    /// Policy label.
    pub policy: String,
    /// Cells this policy ran.
    pub cells: usize,
    /// Mean SLO attainment across cells.
    pub mean_slo_attainment: f64,
    /// Worst (minimum) SLO attainment across cells.
    pub worst_slo_attainment: f64,
    /// Mean within-SLO throughput across cells, requests/second.
    pub mean_goodput_per_sec: f64,
    /// Mean p99 TTFT across cells, seconds.
    pub mean_p99_ttft: f64,
    /// Worst p99 TTFT across cells, seconds.
    pub worst_p99_ttft: f64,
    /// Mean p99 TPOT across cells, seconds.
    pub mean_p99_tpot: f64,
    /// Half-width of the 95% confidence interval on SLO attainment across
    /// cells (0 with fewer than two cells; meaningful with the `replicas`
    /// axis).
    pub slo_attainment_ci95: f64,
    /// Half-width of the 95% confidence interval on goodput across cells.
    pub goodput_ci95: f64,
    /// Total refactors across cells.
    pub total_refactors: u32,
    /// Total switchover pause across cells, seconds.
    pub total_refactor_pause_secs: f64,
    /// Total revocation events faced across cells.
    pub total_revocations: u32,
    /// Total requests replayed after revocations.
    pub total_replays: u32,
    /// Mean time-to-recover across disrupted cells, seconds (0 when no
    /// cell saw a disruption).
    pub mean_ttr_secs: f64,
    /// Mean GPUs held, averaged across cells.
    pub mean_gpus_held: f64,
    /// Cells cut short by the step-budget watchdog.
    pub truncated_cells: usize,
    /// Cells whose engine run panicked.
    pub failed_cells: usize,
}

/// The complete fleet artifact: the spec that produced it, every cell
/// result in expansion order, and per-policy summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Artifact format version (bump on breaking metric changes).
    pub version: u32,
    /// The sweep that produced this report.
    pub spec: SweepSpec,
    /// Per-cell results, in grid expansion order.
    pub cells: Vec<CellResult>,
    /// Per-policy aggregates, sorted by policy label.
    pub policies: Vec<PolicySummary>,
}

/// Current [`FleetReport::version`]. Version 2 added the disruption /
/// recovery metrics and the replica confidence intervals.
pub const REPORT_VERSION: u32 = 2;

/// Computes steady-state cell metrics from a raw engine report.
///
/// `offered` is the arrival count inside the measured window (computed by
/// the runner from the workload it generated, so shed requests count
/// against the system). `span_secs` is the measured window length — the
/// arrival horizon minus warmup, *excluding* any drain grace the engine
/// ran past the last arrival (throughput denominators must match the
/// window the offered load was counted in).
pub fn summarize_cell(
    report: &RunReport,
    warmup_secs: f64,
    span_secs: f64,
    offered: usize,
) -> CellMetrics {
    let cut = SimTime::from_secs_f64(warmup_secs);
    let span = span_secs.max(1e-9);

    let mut ttft = Digest::new();
    let mut tpot = Digest::new();
    let mut latency = Digest::new();
    let mut completed = 0usize;
    let mut within = 0usize;
    let mut disrupted_completed = 0usize;
    let mut disrupted_within = 0usize;
    for o in report.outcomes.outcomes() {
        // Window membership is by *arrival*, matching the offered-load
        // denominator: every measured completion is one of the offered
        // requests, so attainment can never exceed 100%.
        if o.arrival < cut {
            continue;
        }
        completed += 1;
        if o.within_slo() {
            within += 1;
        }
        // Completions landing inside a disruption recovery window measure
        // the per-disruption SLO-violation window.
        if report
            .disruptions
            .in_disruption_window(o.completion.as_secs_f64())
        {
            disrupted_completed += 1;
            if o.within_slo() {
                disrupted_within += 1;
            }
        }
        let lat = o.latency().as_secs_f64();
        let first_token = o.queue.as_secs_f64() + o.prefill.as_secs_f64();
        latency.record(lat);
        ttft.record(first_token);
        if o.output_tokens > 0 {
            tpot.record(((lat - first_token).max(0.0)) / f64::from(o.output_tokens));
        }
    }

    CellMetrics {
        offered,
        completed,
        within_slo: within,
        slo_attainment: if offered == 0 {
            0.0
        } else {
            within as f64 / offered as f64
        },
        goodput_per_sec: within as f64 / span,
        p50_ttft: ttft.quantile(0.5),
        p99_ttft: ttft.quantile(0.99),
        p50_tpot: tpot.quantile(0.5),
        p99_tpot: tpot.quantile(0.99),
        p50_latency: latency.quantile(0.5),
        p99_latency: latency.quantile(0.99),
        refactors: report.refactors,
        refactor_pause_secs: report.refactor_pause_secs,
        mean_gpus_held: report.mean_gpus_held(),
        spawns: report.spawns,
        revocations: report.disruptions.revocation_events,
        requests_replayed: report.disruptions.requests_replayed,
        tokens_lost: report.disruptions.tokens_lost,
        mean_ttr_secs: report.disruptions.mean_time_to_recover(),
        max_ttr_secs: report.disruptions.max_time_to_recover(),
        disrupted_completed,
        disrupted_within_slo: disrupted_within,
        events: report.events,
        truncated: report.truncated,
        failed: false,
    }
}

/// Half-width of a 95% confidence interval on the mean of `xs` (normal
/// approximation, sample standard deviation); 0 below two samples.
fn ci95(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    1.96 * (var / n as f64).sqrt()
}

impl FleetReport {
    /// Assembles the artifact from executed cells (already in expansion
    /// order) and computes the per-policy rollup.
    pub fn assemble(spec: SweepSpec, cells: Vec<CellResult>) -> FleetReport {
        let mut labels: Vec<String> = cells
            .iter()
            .map(|c| c.cell.policy.label())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        labels.sort();
        let policies = labels
            .into_iter()
            .map(|label| {
                let mine: Vec<&CellResult> = cells
                    .iter()
                    .filter(|c| c.cell.policy.label() == label)
                    .collect();
                let n = mine.len().max(1) as f64;
                let mean = |f: &dyn Fn(&CellMetrics) -> f64| -> f64 {
                    mine.iter().map(|c| f(&c.metrics)).sum::<f64>() / n
                };
                let slo_samples: Vec<f64> = mine.iter().map(|c| c.metrics.slo_attainment).collect();
                let goodput_samples: Vec<f64> =
                    mine.iter().map(|c| c.metrics.goodput_per_sec).collect();
                let disrupted: Vec<&&CellResult> =
                    mine.iter().filter(|c| c.metrics.revocations > 0).collect();
                let mean_ttr_secs = if disrupted.is_empty() {
                    0.0
                } else {
                    disrupted
                        .iter()
                        .map(|c| c.metrics.mean_ttr_secs)
                        .sum::<f64>()
                        / disrupted.len() as f64
                };
                PolicySummary {
                    policy: label,
                    cells: mine.len(),
                    mean_slo_attainment: mean(&|m| m.slo_attainment),
                    worst_slo_attainment: mine
                        .iter()
                        .map(|c| c.metrics.slo_attainment)
                        .fold(f64::INFINITY, f64::min),
                    mean_goodput_per_sec: mean(&|m| m.goodput_per_sec),
                    mean_p99_ttft: mean(&|m| m.p99_ttft),
                    worst_p99_ttft: mine.iter().map(|c| c.metrics.p99_ttft).fold(0.0, f64::max),
                    mean_p99_tpot: mean(&|m| m.p99_tpot),
                    slo_attainment_ci95: ci95(&slo_samples),
                    goodput_ci95: ci95(&goodput_samples),
                    total_refactors: mine.iter().map(|c| c.metrics.refactors).sum(),
                    total_refactor_pause_secs: mine
                        .iter()
                        .map(|c| c.metrics.refactor_pause_secs)
                        .sum(),
                    total_revocations: mine.iter().map(|c| c.metrics.revocations).sum(),
                    total_replays: mine.iter().map(|c| c.metrics.requests_replayed).sum(),
                    mean_ttr_secs,
                    mean_gpus_held: mean(&|m| m.mean_gpus_held),
                    truncated_cells: mine.iter().filter(|c| c.metrics.truncated).count(),
                    failed_cells: mine.iter().filter(|c| c.metrics.failed).count(),
                }
            })
            .collect();
        FleetReport {
            version: REPORT_VERSION,
            spec,
            cells,
            policies,
        }
    }

    /// The byte-stable JSON artifact.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }

    /// Parses a JSON artifact. An artifact written by a different format
    /// version is rejected with the version mismatch named explicitly —
    /// not an obscure missing-field error — so stale committed baselines
    /// fail the gate with an actionable message.
    pub fn from_json(s: &str) -> Result<FleetReport, serde_json::Error> {
        let version_of = |s: &str| -> Option<u64> {
            match serde_json::from_str::<serde::Value>(s).ok()?.get("version") {
                Some(serde::Value::UInt(v)) => Some(*v),
                _ => None,
            }
        };
        let mismatch = |version: u64, detail: &str| {
            serde_json::Error(format!(
                "report is format version {version}, this build expects {REPORT_VERSION} — \
                 regenerate the artifact{detail}"
            ))
        };
        match serde_json::from_str::<FleetReport>(s) {
            Ok(report) if u64::from(report.version) == u64::from(REPORT_VERSION) => Ok(report),
            Ok(report) => Err(mismatch(u64::from(report.version), "")),
            Err(e) => match version_of(s) {
                Some(version) if version != u64::from(REPORT_VERSION) => {
                    Err(mismatch(version, &format!(" ({e})")))
                }
                _ => Err(e),
            },
        }
    }

    /// The per-cell comparison table.
    pub fn cell_table(&self) -> Table {
        let mut t = Table::new(
            &format!("Fleet `{}`: per-cell results", self.spec.name),
            &[
                "cell",
                "policy",
                "cv",
                "rate",
                "cluster",
                "offered",
                "SLO att.",
                "goodput/s",
                "p50 TTFT",
                "p99 TTFT",
                "p99 TPOT",
                "p99 lat",
                "refactors",
                "revs",
                "replays",
                "TTR",
                "GPUs",
                "status",
            ],
        );
        for c in &self.cells {
            let m = &c.metrics;
            t.row(vec![
                c.cell.index.to_string(),
                c.cell.policy.label(),
                fmt_f(c.cell.cv, 1),
                fmt_f(c.cell.rate, 1),
                c.cell.cluster.label(),
                m.offered.to_string(),
                fmt_pct(m.slo_attainment),
                fmt_f(m.goodput_per_sec, 2),
                fmt_secs(m.p50_ttft),
                fmt_secs(m.p99_ttft),
                fmt_secs(m.p99_tpot),
                fmt_secs(m.p99_latency),
                m.refactors.to_string(),
                m.revocations.to_string(),
                m.requests_replayed.to_string(),
                fmt_secs(m.mean_ttr_secs),
                fmt_f(m.mean_gpus_held, 1),
                if m.failed {
                    "FAIL"
                } else if m.truncated {
                    "TRUNC"
                } else {
                    "-"
                }
                .to_string(),
            ]);
        }
        t
    }

    /// The per-policy rollup table.
    pub fn policy_table(&self) -> Table {
        let mut t = Table::new(
            &format!("Fleet `{}`: per-policy summary", self.spec.name),
            &[
                "policy",
                "cells",
                "mean SLO att.",
                "±95%",
                "worst SLO att.",
                "mean goodput/s",
                "mean p99 TTFT",
                "worst p99 TTFT",
                "mean p99 TPOT",
                "refactors",
                "pause total",
                "revs",
                "replays",
                "mean TTR",
                "mean GPUs",
                "trunc",
                "fail",
            ],
        );
        for p in &self.policies {
            t.row(vec![
                p.policy.clone(),
                p.cells.to_string(),
                fmt_pct(p.mean_slo_attainment),
                fmt_pct(p.slo_attainment_ci95),
                fmt_pct(p.worst_slo_attainment),
                fmt_f(p.mean_goodput_per_sec, 2),
                fmt_secs(p.mean_p99_ttft),
                fmt_secs(p.worst_p99_ttft),
                fmt_secs(p.mean_p99_tpot),
                p.total_refactors.to_string(),
                fmt_secs(p.total_refactor_pause_secs),
                p.total_revocations.to_string(),
                p.total_replays.to_string(),
                fmt_secs(p.mean_ttr_secs),
                fmt_f(p.mean_gpus_held, 1),
                p.truncated_cells.to_string(),
                p.failed_cells.to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use flexpipe_metrics::{OutcomeLog, RequestOutcome};
    use flexpipe_sim::SimDuration;

    fn fake_report(latency_ms: &[u64]) -> RunReport {
        let mut outcomes = OutcomeLog::new();
        for (i, &ms) in latency_ms.iter().enumerate() {
            let arrival = SimTime::from_secs(40 + i as u64);
            outcomes.record(RequestOutcome {
                id: i as u64,
                arrival,
                completion: arrival + SimDuration::from_millis(ms),
                queue: SimDuration::from_millis(ms / 4),
                execution: SimDuration::from_millis(ms / 2),
                communication: SimDuration::from_millis(ms / 8),
                prefill: SimDuration::from_millis(ms / 4),
                slo: SimDuration::from_secs(2),
                prompt_tokens: 512,
                output_tokens: 16,
            });
        }
        let summary = outcomes.summarize(100.0);
        RunReport {
            policy: "test".into(),
            horizon_secs: 100.0,
            arrived: latency_ms.len(),
            summary,
            outcomes,
            queue_timeline: Default::default(),
            inflight_timeline: Default::default(),
            fleet_size: 8,
            ledger: Default::default(),
            refactors: 2,
            refactor_pause_secs: 0.05,
            spawns: 3,
            mean_init_secs: 1.0,
            mean_alloc_wait_secs: 0.1,
            warm_loads: 1,
            cold_loads: 1,
            disruptions: Default::default(),
            events: 1000,
            truncated: false,
        }
    }

    #[test]
    fn ttft_and_tpot_are_computed() {
        let report = fake_report(&[1000, 1000, 1000, 4000]);
        let m = summarize_cell(&report, 30.0, 70.0, 4);
        assert_eq!(m.completed, 4);
        assert_eq!(m.within_slo, 3);
        assert!((m.slo_attainment - 0.75).abs() < 1e-9);
        // TTFT of a 1000 ms request: 250 queue + 250 prefill = 500 ms.
        assert!((m.p50_ttft - 0.5).abs() < 1e-6, "p50 ttft {}", m.p50_ttft);
        // TPOT: remaining 500 ms over 16 tokens = 31.25 ms.
        assert!(
            (m.p50_tpot - 0.03125).abs() < 1e-6,
            "p50 tpot {}",
            m.p50_tpot
        );
        assert!(m.p99_latency >= m.p50_latency);
    }

    #[test]
    fn warmup_window_excludes_early_completions() {
        let report = fake_report(&[1000, 1000]);
        // Warmup cut beyond both completions (arrivals at 40/41 s).
        let m = summarize_cell(&report, 60.0, 40.0, 0);
        assert_eq!(m.completed, 0);
        assert_eq!(m.slo_attainment, 0.0);
    }

    #[test]
    fn report_assembles_sorted_policy_rollup() {
        let spec = SweepSpec::template();
        let cells: Vec<CellResult> = spec
            .expand()
            .into_iter()
            .map(|cell| {
                let report = fake_report(&[800, 1200]);
                let metrics = summarize_cell(&report, 0.0, 100.0, 2);
                CellResult { cell, metrics }
            })
            .collect();
        let report = FleetReport::assemble(spec, cells);
        assert_eq!(report.policies.len(), 3);
        let labels: Vec<&str> = report.policies.iter().map(|p| p.policy.as_str()).collect();
        let mut sorted = labels.clone();
        sorted.sort();
        assert_eq!(labels, sorted);
        assert_eq!(report.policies[0].cells, 8);
        assert!(!report.cell_table().is_empty());
        assert!(!report.policy_table().is_empty());
    }

    #[test]
    fn old_format_versions_fail_with_a_version_message() {
        let spec = SweepSpec::template();
        let report = FleetReport::assemble(spec, Vec::new());
        let mut json = report.to_json();
        // Emulate a v1 artifact: old version number, missing new fields.
        json = json.replacen("\"version\": 2", "\"version\": 1", 1);
        let err = FleetReport::from_json(&json).unwrap_err();
        assert!(
            err.to_string().contains("format version 1"),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let spec = SweepSpec::template();
        let cells: Vec<CellResult> = spec
            .expand()
            .into_iter()
            .take(4)
            .map(|cell| {
                let report = fake_report(&[900, 1100, 3000]);
                let metrics = summarize_cell(&report, 0.0, 100.0, 3);
                CellResult { cell, metrics }
            })
            .collect();
        let report = FleetReport::assemble(spec, cells);
        let json = report.to_json();
        let back = FleetReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), json);
    }
}
