//! `flexpipe-fleet`: parallel scenario-fleet orchestration for the
//! FlexPipe reproduction.
//!
//! The paper's claims — inflight refactoring beating static and
//! restart-based serving across *dynamic* workloads and *fragmented*
//! clusters — only hold up when validated over a grid of scenarios, not a
//! single run. This crate turns the one-shot simulator into an experiment
//! orchestration subsystem:
//!
//! - [`spec`] — the declarative sweep DSL ([`SweepSpec`], JSON or a TOML
//!   subset): arrival CV × request rate × cluster shape × policy, expanded
//!   deterministically with per-cell seed derivation that gives every
//!   policy in a cell group byte-identical traffic;
//! - [`runner`] — the thread-pool fleet runner over
//!   `flexpipe_serving::Engine`, with progress reporting, per-cell panic
//!   containment and the step-budget watchdog;
//! - [`report`] — steady-state aggregation (TTFT/TPOT percentiles, SLO
//!   attainment, goodput, refactor pauses) into per-cell and per-policy
//!   tables plus a byte-stable JSON artifact;
//! - [`mod@gate`] — regression detection against a committed baseline
//!   report (quality metrics plus chaos recovery: mean TTR, replay
//!   counts);
//! - [`mod@bench`] — engine-tunable sweeps (`fleet bench`): ubatch size ×
//!   prefill caps × admission batch × rates up to 10× the paper's 20 QPS,
//!   with wall-clock throughput columns and indexed-vs-naive admission
//!   A/B timing;
//! - [`campaign`] — resumable multi-spec campaigns (`fleet campaign`):
//!   sweep + bench spec lists over one shared worker pool, with every
//!   cell persisted in the content-addressed cache;
//! - [`cache`] — the per-cell artifact cache: keys hash each cell's
//!   canonicalized semantics under the engine-fingerprint salt, entries
//!   write atomically, truncated cells never persist (the resume
//!   mechanism), `stats`/`gc` bound the directory;
//! - [`store`] — the pluggable storage layer under the cache
//!   ([`CacheStore`]): the sharded localdisk layout (default,
//!   NFS-shareable) and a single-file append log, both passing one
//!   conformance suite, plus the atomic worker-claim protocol;
//! - [`worker`] — the distributed campaign worker (`fleet worker`):
//!   drain one campaign's cell list from N processes/machines against a
//!   shared cache dir, by deterministic shard (`--shard i/n`) or by
//!   claim-file coordination with heartbeats and stale-claim reaping;
//! - [`trace`] — structured engine traces as fleet artifacts
//!   (`fleet trace`): record a cell's virtual-time JSONL trace,
//!   summarize or structurally diff trace files, and profile the
//!   engine's own dispatch self-time at fleet scale;
//! - [`toml_lite`] — the offline TOML-subset reader.
//!
//! The `flexpipe-fleet` binary wraps it all into `init` / `run` /
//! `bench` / `campaign` / `worker` / `cache` / `trace` /
//! `fingerprint` / `compare` / `gate` subcommands.
//!
//! # Determinism contract
//!
//! Running the same spec twice — at any thread count — produces
//! byte-identical JSON reports: cells derive their seeds from spec
//! coordinates (never from execution order), workers write into
//! pre-assigned slots, map serialization is order-stable, and wall-clock
//! measurements go to stderr only, never into the artifact.

#![warn(missing_docs)]

pub mod bench;
pub mod cache;
pub mod campaign;
pub mod gate;
pub mod report;
pub mod runner;
pub mod spec;
pub mod store;
pub mod toml_lite;
pub mod trace;
pub mod worker;

pub use bench::{
    derive_bench_seed, hot_path_speedups, hot_path_table, run_bench, run_bench_cell, BenchCell,
    BenchCellResult, BenchReport, BenchSpec, BenchTiming, HotPathRow,
};
pub use cache::{
    cache_salt, canonical_json, canonicalize, cell_key, key_shard, CacheStats, CellCache,
};
pub use campaign::{
    assemble_campaign, load_entries, run_campaign, AssembleOutcome, CampaignEntry,
    CampaignManifest, CampaignOptions, CampaignPlan, CampaignResult, CampaignSpec, CampaignStats,
    CampaignTiming, CellTiming, EntryKind, MissingCell, SpecReport,
};
pub use gate::{
    gate, GateConfig, GateOutcome, Regression, SpeedupGate, SpeedupGateReport, SPEEDUP_GATE_VERSION,
};
pub use report::{summarize_cell, CellMetrics, CellResult, FleetReport, PolicySummary};
pub use runner::{
    realize_disruptions, run_cell, run_cell_in_mode, run_cell_observed, run_sweep, FleetError,
    RunOptions,
};
pub use spec::{
    derive_cell_seed, replica_seed, BackgroundShape, Cell, ClusterShape, DisruptionShape,
    PolicySpec, SweepSpec,
};
pub use store::{
    open_store, CacheStore, ClaimInfo, ClaimOutcome, GcOutcome, StoreKind, StoredObject,
    DEFAULT_CLAIM_TTL,
};
pub use trace::{
    find_cell, profile_on_tick, profile_on_tick_calm, profile_on_tick_flexpipe, profile_spec,
    profile_spec_calm, profile_spec_flexpipe, record_cell_trace,
};
pub use worker::{run_worker, WorkerOptions, WorkerOutcome};

use serde::Deserialize;

/// Loads a [`SweepSpec`] from JSON or TOML text, deciding by `path`'s
/// extension (`.toml` → TOML subset, anything else → JSON).
pub fn parse_spec(path: &str, text: &str) -> Result<SweepSpec, FleetError> {
    parse_by_extension(path, text, "spec")
}

/// Loads a [`BenchSpec`] from JSON or TOML text, by extension.
pub fn parse_bench(path: &str, text: &str) -> Result<BenchSpec, FleetError> {
    parse_by_extension(path, text, "bench spec")
}

/// Loads a [`CampaignSpec`] from JSON or TOML text, by extension.
pub fn parse_campaign(path: &str, text: &str) -> Result<CampaignSpec, FleetError> {
    parse_by_extension(path, text, "campaign spec")
}

fn parse_by_extension<T: Deserialize>(path: &str, text: &str, what: &str) -> Result<T, FleetError> {
    if path.ends_with(".toml") {
        let value = toml_lite::parse(text).map_err(|e| FleetError(e.to_string()))?;
        T::from_value(&value).map_err(|e| FleetError(format!("{what}: {e}")))
    } else {
        serde_json::from_str(text).map_err(|e| FleetError(format!("{what}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_and_toml_specs_agree() {
        let spec = SweepSpec::template();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let from_json = parse_spec("sweep.json", &json).unwrap();
        assert_eq!(from_json, spec);

        let toml = r#"
            name = "cv-rate-sensitivity"
            model = "Opt66B"
            seed = 42
            horizon_secs = 120.0
            warmup_secs = 30.0
            slo_secs = 2.0
            slo_per_output_token_ms = 100.0
            background = "TestbedLike"
            max_events = 200000000
            cvs = [0.5, 2.0, 4.0, 8.0]
            rates = [10.0, 20.0]
            clusters = ["PaperTestbed"]
            policies = [{ Paper = "FlexPipe" }, { Paper = "AlpaServe" }, { Paper = "ServerlessLlm" }]

            [lengths]
            prompt_median = 1024.0
            prompt_sigma = 0.9
            prompt_range = [16, 8192]
            output_mean = 64.0
            output_range = [1, 1024]
        "#;
        let from_toml = parse_spec("sweep.toml", toml).unwrap();
        assert_eq!(from_toml, spec);
    }

    #[test]
    fn bad_specs_error_cleanly() {
        assert!(parse_spec("x.json", "{").is_err());
        assert!(parse_spec("x.toml", "= broken").is_err());
        assert!(parse_spec("x.json", "{}").is_err());
        assert!(parse_bench("x.json", "{}").is_err());
        assert!(parse_campaign("x.json", "{}").is_err());
    }

    #[test]
    fn campaign_specs_parse_from_json_and_toml() {
        let spec = CampaignSpec::template();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        assert_eq!(parse_campaign("c.json", &json).unwrap(), spec);
        let toml = r#"
            name = "campaign-ci"
            cache_dir = ".fleet-cache"
            entries = [{ kind = "Sweep", path = "cv-rate-sensitivity.json" }, { kind = "Sweep", path = "disruption-recovery.json" }, { kind = "Bench", path = "engine-bench.json" }]
        "#;
        assert_eq!(parse_campaign("c.toml", toml).unwrap(), spec);
    }

    #[test]
    fn bench_specs_parse_from_toml_too() {
        let spec = BenchSpec::template();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        assert_eq!(parse_bench("b.json", &json).unwrap(), spec);

        let toml = r#"
            name = "engine-bench"
            model = "Opt66B"
            seed = 42
            horizon_secs = 45.0
            warmup_secs = 10.0
            slo_secs = 2.0
            slo_per_output_token_ms = 100.0
            background = "TestbedLike"
            max_events = 200000000
            cv = 4.0
            cluster = "PaperTestbed"
            policy = { Paper = "FlexPipe" }
            rates = [20.0, 50.0, 100.0, 200.0]
            ubatch_sizes = [64, 128]
            prefill_token_caps = [512, 1024]
            admission_batches = [8, 16]
            admission = ["Indexed"]

            [lengths]
            prompt_median = 1024.0
            prompt_sigma = 0.9
            prompt_range = [16, 8192]
            output_mean = 64.0
            output_range = [1, 1024]
        "#;
        assert_eq!(parse_bench("b.toml", toml).unwrap(), spec);
    }
}
