//! FlexPipe §5: fine-grained model partitioning with preserved
//! computational-graph constraints.
//!
//! Three pieces:
//!
//! - [`objective`] — the Eq. (2) stage cost: compute + un-overlapped
//!   parameter streaming + the refactoring-potential regulariser `R(S_k)`;
//! - [`dp`] — the constrained bottleneck DP solving for a `K`-stage
//!   partition under per-stage memory feasibility;
//! - [`lattice`] — the granularity lattice of aligned configurations
//!   (finest units + merge groupings) that inflight refactoring (§6)
//!   transitions across, plus byte-accurate transition plans.

#![warn(missing_docs)]

pub mod dp;
pub mod lattice;
pub mod objective;

pub use dp::{Partition, PartitionError, Partitioner};
pub use lattice::{GranularityLattice, LatticeLevel, StageTransition, TransitionPlan};
pub use objective::{CutPolicy, Objective, PartitionParams, StageCost};
