//! The granularity lattice: pre-aligned pipeline configurations that make
//! inflight refactoring a matter of merging or splitting *finest units*.
//!
//! §5's partitioner "preserves the parameter grouping structure to enable
//! future replica alignment": every coarser pipeline configuration is a
//! grouping of the same finest stage set, so a runtime transition never
//! re-cuts the model — merged stages reuse existing memory layouts, and the
//! bytes that must move are exactly the units that change host.

use serde::{Deserialize, Serialize};

use flexpipe_model::{CostModel, ModelGraph, OpRange};

use crate::dp::{Partition, PartitionError, Partitioner};

/// One pipeline configuration inside the lattice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatticeLevel {
    /// Stage count η of this level.
    pub stages: u32,
    /// For each coarse stage, the `[start, end)` range of finest units it
    /// merges.
    pub groups: Vec<(u32, u32)>,
    /// Materialised operator ranges (unions of unit ranges).
    pub ranges: Vec<OpRange>,
    /// Bottleneck scalar cost of this level, seconds.
    pub bottleneck_secs: f64,
}

/// The lattice: a finest partition plus aligned coarser levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GranularityLattice {
    finest: Partition,
    levels: Vec<LatticeLevel>,
}

/// How one new stage is populated during a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTransition {
    /// Index of the stage in the new configuration.
    pub new_stage: u32,
    /// Old stage whose device keeps hosting the surviving units (the one
    /// with maximal parameter overlap), if any overlap exists.
    pub reuse_old_stage: Option<u32>,
    /// Parameter bytes that must be fetched onto the hosting device
    /// (from host cache or storage) because they lived elsewhere.
    pub load_param_bytes: u64,
    /// KV-cache bytes per cached token that must migrate to this stage.
    pub kv_move_bytes_per_token: u64,
}

/// A full transition plan between two lattice levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionPlan {
    /// Stage count before.
    pub from_stages: u32,
    /// Stage count after.
    pub to_stages: u32,
    /// Per-new-stage population plans.
    pub transitions: Vec<StageTransition>,
    /// Sum of parameter bytes to fetch.
    pub total_load_bytes: u64,
    /// Sum of KV bytes per cached token to migrate.
    pub total_kv_bytes_per_token: u64,
}

impl TransitionPlan {
    /// Whether this transition refines the pipeline (split, Fig. 6a) as
    /// opposed to consolidating it (merge, Fig. 6c).
    pub fn is_expansion(&self) -> bool {
        self.to_stages > self.from_stages
    }
}

impl GranularityLattice {
    /// Builds a lattice over `g`: the finest feasible partition with
    /// `finest_stages` units, plus one aligned level per entry of
    /// `level_stage_counts` (each must divide into the unit count; levels
    /// exceeding it are skipped).
    pub fn build(
        partitioner: &Partitioner,
        g: &ModelGraph,
        finest_stages: u32,
        level_stage_counts: &[u32],
        cost_model: &CostModel,
    ) -> Result<Self, PartitionError> {
        let finest = partitioner.partition(g, finest_stages)?;
        let unit_count = finest.ranges.len() as u32;

        let mut levels = Vec::new();
        for &eta in level_stage_counts {
            if eta == 0 || eta > unit_count {
                continue;
            }
            if let Some(level) = Self::group_units(&finest, g, eta, partitioner, cost_model) {
                levels.push(level);
            }
        }
        levels.sort_by_key(|l| l.stages);
        levels.dedup_by_key(|l| l.stages);
        Ok(GranularityLattice { finest, levels })
    }

    /// Groups finest units into `eta` contiguous, memory-feasible stages by
    /// bottleneck DP over unit boundaries.
    fn group_units(
        finest: &Partition,
        g: &ModelGraph,
        eta: u32,
        partitioner: &Partitioner,
        cost_model: &CostModel,
    ) -> Option<LatticeLevel> {
        let units = &finest.ranges;
        let n = units.len();
        let eta = eta as usize;
        let params = partitioner.params();
        let objective = crate::objective::Objective::new(*params, cost_model);

        // cost[i][j]: scalar cost of merging units i..j, or None if the
        // merged stage does not fit in GPU memory.
        let mut cost = vec![vec![None::<f64>; n + 1]; n + 1];
        for i in 0..n {
            for j in (i + 1)..=n {
                let r = OpRange::new(units[i].start, units[j - 1].end);
                let c = objective.stage_cost(g, r);
                if c.feasible {
                    cost[i][j] = Some(c.scalar(params.lambda));
                }
            }
        }
        const INF: f64 = f64::INFINITY;
        let mut best = vec![vec![(INF, INF); eta + 1]; n + 1];
        let mut back = vec![vec![usize::MAX; eta + 1]; n + 1];
        best[0][0] = (0.0, 0.0);
        for s in 1..=eta {
            for j in s..=n {
                for i in (s - 1)..j {
                    let Some(c) = cost[i][j] else { continue };
                    let (pb, ps) = best[i][s - 1];
                    if pb.is_infinite() {
                        continue;
                    }
                    let cand = (pb.max(c), ps + c);
                    if cand < best[j][s] {
                        best[j][s] = cand;
                        back[j][s] = i;
                    }
                }
            }
        }
        if best[n][eta].0.is_infinite() {
            return None;
        }
        let mut bounds = vec![n];
        let mut j = n;
        for s in (1..=eta).rev() {
            j = back[j][s];
            bounds.push(j);
        }
        bounds.reverse();
        let groups: Vec<(u32, u32)> = bounds
            .windows(2)
            .map(|w| (w[0] as u32, w[1] as u32))
            .collect();
        let ranges: Vec<OpRange> = groups
            .iter()
            .map(|&(a, b)| OpRange::new(units[a as usize].start, units[b as usize - 1].end))
            .collect();
        Some(LatticeLevel {
            stages: eta as u32,
            groups,
            ranges,
            bottleneck_secs: best[n][eta].0,
        })
    }

    /// The finest partition (the lattice's unit set).
    pub fn finest(&self) -> &Partition {
        &self.finest
    }

    /// All levels, sorted by ascending stage count.
    pub fn levels(&self) -> &[LatticeLevel] {
        &self.levels
    }

    /// The level with exactly `stages` stages, if present.
    pub fn level(&self, stages: u32) -> Option<&LatticeLevel> {
        self.levels.iter().find(|l| l.stages == stages)
    }

    /// Stage counts available in the lattice.
    pub fn stage_counts(&self) -> Vec<u32> {
        self.levels.iter().map(|l| l.stages).collect()
    }

    /// Plans a transition between two levels of the lattice.
    ///
    /// # Panics
    ///
    /// Panics if either stage count is not a lattice level.
    pub fn plan_transition(
        &self,
        g: &ModelGraph,
        from_stages: u32,
        to_stages: u32,
    ) -> TransitionPlan {
        let from = self
            .level(from_stages)
            .unwrap_or_else(|| panic!("no lattice level with {from_stages} stages"));
        let to = self
            .level(to_stages)
            .unwrap_or_else(|| panic!("no lattice level with {to_stages} stages"));

        let unit_count = self.finest.ranges.len();
        // Which old stage hosts each finest unit.
        let mut old_of_unit = vec![u32::MAX; unit_count];
        for (si, &(a, b)) in from.groups.iter().enumerate() {
            for u in a..b {
                old_of_unit[u as usize] = si as u32;
            }
        }

        let unit_params: Vec<u64> = self
            .finest
            .ranges
            .iter()
            .map(|&r| g.range_param_bytes(r))
            .collect();
        let unit_kv: Vec<u64> = self
            .finest
            .ranges
            .iter()
            .map(|&r| g.range_kv_bytes_per_token(r))
            .collect();

        // Parameter overlap of every (new stage, old stage) pair.
        let mut candidates: Vec<(u64, u32, u32)> = Vec::new(); // (bytes, new, old)
        for (ni, &(a, b)) in to.groups.iter().enumerate() {
            let mut overlap: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
            for u in a..b {
                *overlap.entry(old_of_unit[u as usize]).or_insert(0) += unit_params[u as usize];
            }
            for (&old, &bytes) in &overlap {
                candidates.push((bytes, ni as u32, old));
            }
        }
        // Each old stage occupies one physical device, so it can keep
        // hosting at most one new stage: assign reuse greedily by maximal
        // parameter overlap (deterministic tie-break on indices). In an
        // expansion this is what forces the split-off halves onto fresh
        // devices; in a consolidation each old stage is contained in
        // exactly one new stage and the assignment is trivially injective.
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut reuse_of_new = vec![None::<u32>; to.groups.len()];
        let mut old_taken = vec![false; from.groups.len()];
        for (_, ni, old) in candidates {
            if reuse_of_new[ni as usize].is_none() && !old_taken[old as usize] {
                reuse_of_new[ni as usize] = Some(old);
                old_taken[old as usize] = true;
            }
        }

        let mut transitions = Vec::with_capacity(to.groups.len());
        let mut total_load = 0u64;
        let mut total_kv = 0u64;
        for (ni, &(a, b)) in to.groups.iter().enumerate() {
            let reuse = reuse_of_new[ni];
            let mut load = 0u64;
            let mut kv = 0u64;
            for u in a..b {
                if Some(old_of_unit[u as usize]) != reuse {
                    load += unit_params[u as usize];
                    kv += unit_kv[u as usize];
                }
            }
            total_load += load;
            total_kv += kv;
            transitions.push(StageTransition {
                new_stage: ni as u32,
                reuse_old_stage: reuse,
                load_param_bytes: load,
                kv_move_bytes_per_token: kv,
            });
        }
        TransitionPlan {
            from_stages,
            to_stages,
            transitions,
            total_load_bytes: total_load,
            total_kv_bytes_per_token: total_kv,
        }
    }

    /// Validates lattice alignment invariants.
    pub fn validate(&self, g: &ModelGraph) -> Result<(), String> {
        let n = self.finest.ranges.len() as u32;
        for level in &self.levels {
            if level.groups.len() != level.ranges.len() {
                return Err(format!("level {}: group/range mismatch", level.stages));
            }
            // Groups must partition [0, n).
            let mut cursor = 0u32;
            for &(a, b) in &level.groups {
                if a != cursor || b <= a {
                    return Err(format!(
                        "level {}: groups not a partition at ({a},{b})",
                        level.stages
                    ));
                }
                cursor = b;
            }
            if cursor != n {
                return Err(format!(
                    "level {}: groups end at {cursor} of {n}",
                    level.stages
                ));
            }
            // Ranges must be exact unions of unit ranges and cover the graph.
            for (&(a, b), r) in level.groups.iter().zip(&level.ranges) {
                let expect = OpRange::new(
                    self.finest.ranges[a as usize].start,
                    self.finest.ranges[b as usize - 1].end,
                );
                if *r != expect {
                    return Err(format!("level {}: range {r:?} != {expect:?}", level.stages));
                }
            }
            if level.ranges[0].start != 0 || level.ranges.last().unwrap().end != g.op_count() {
                return Err(format!("level {} does not cover the graph", level.stages));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::PartitionParams;
    use flexpipe_model::zoo;

    fn lattice_for(g: &ModelGraph, finest: u32, levels: &[u32]) -> GranularityLattice {
        let cm = CostModel::default();
        let p = Partitioner::new(PartitionParams::default(), cm);
        GranularityLattice::build(&p, g, finest, levels, &cm).unwrap()
    }

    #[test]
    fn builds_paper_levels_for_opt() {
        let g = zoo::opt_66b();
        let lat = lattice_for(&g, 32, &[2, 4, 8, 16, 32]);
        lat.validate(&g).unwrap();
        assert_eq!(lat.stage_counts(), vec![2, 4, 8, 16, 32]);
        // Finer levels have strictly smaller bottlenecks (more parallelism).
        let bots: Vec<f64> = lat.levels().iter().map(|l| l.bottleneck_secs).collect();
        assert!(
            bots.windows(2).all(|w| w[1] < w[0]),
            "bottlenecks not decreasing: {bots:?}"
        );
    }

    #[test]
    fn infeasible_levels_are_skipped() {
        let g = zoo::opt_66b();
        // A single stage (123 GiB) cannot exist; 1 must be skipped.
        let lat = lattice_for(&g, 32, &[1, 2, 4]);
        assert_eq!(lat.stage_counts(), vec![2, 4]);
    }

    #[test]
    fn expansion_plan_loads_split_halves() {
        let g = zoo::opt_66b();
        let lat = lattice_for(&g, 32, &[4, 8]);
        let plan = lat.plan_transition(&g, 4, 8);
        assert!(plan.is_expansion());
        assert_eq!(plan.transitions.len(), 8);
        // Each old stage keeps roughly half its parameters on the original
        // device; the total fetched must be well under the full model but
        // non-zero.
        assert!(plan.total_load_bytes > 0);
        assert!(plan.total_load_bytes < g.total_param_bytes() * 3 / 4);
        // Exactly the old devices can be reused: 4 of the 8 new stages keep
        // a device, the split-off halves start fresh.
        let reused = plan
            .transitions
            .iter()
            .filter(|t| t.reuse_old_stage.is_some())
            .count();
        assert_eq!(reused, 4);
        // Reuse is injective over old stages.
        let mut olds: Vec<u32> = plan
            .transitions
            .iter()
            .filter_map(|t| t.reuse_old_stage)
            .collect();
        olds.sort_unstable();
        olds.dedup();
        assert_eq!(olds.len(), reused);
    }

    #[test]
    fn consolidation_plan_moves_less_than_everything() {
        let g = zoo::opt_66b();
        let lat = lattice_for(&g, 32, &[4, 8]);
        let plan = lat.plan_transition(&g, 8, 4);
        assert!(!plan.is_expansion());
        assert_eq!(plan.transitions.len(), 4);
        // Merging adjacent pairs: each merged stage keeps its bigger half.
        assert!(plan.total_load_bytes <= g.total_param_bytes() / 2 + (1 << 30));
    }

    #[test]
    fn identity_transition_moves_nothing() {
        let g = zoo::opt_66b();
        let lat = lattice_for(&g, 32, &[8]);
        let plan = lat.plan_transition(&g, 8, 8);
        assert_eq!(plan.total_load_bytes, 0);
        assert_eq!(plan.total_kv_bytes_per_token, 0);
    }

    #[test]
    fn kv_migration_tracks_attention_movement() {
        let g = zoo::opt_66b();
        let lat = lattice_for(&g, 32, &[4, 16]);
        let plan = lat.plan_transition(&g, 4, 16);
        // Three quarters of the units leave their original device; their
        // attention KV must move.
        assert!(plan.total_kv_bytes_per_token > 0);
        let whole_kv = g.range_kv_bytes_per_token(OpRange::new(0, g.op_count()));
        assert!(plan.total_kv_bytes_per_token < whole_kv);
    }

    #[test]
    fn small_model_lattice() {
        let g = zoo::llama2_7b();
        let lat = lattice_for(&g, 16, &[1, 2, 4, 8, 16]);
        lat.validate(&g).unwrap();
        // Llama-7B fits on one GPU, so level 1 exists.
        assert!(lat.level(1).is_some());
    }
}
