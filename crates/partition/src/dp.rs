//! The constrained dynamic-programming partitioner of §5.
//!
//! Given legal cut positions and the Eq. (2) stage objective, the DP finds,
//! for a requested stage count `K`, the contiguous partition minimising the
//! *bottleneck* stage cost with the *sum* of costs as tie-breaker. The
//! bottleneck criterion is what makes stage execution times balanced (the
//! property the paper calls out below Eq. (2)): total compute is invariant
//! across partitions, so a pure sum objective cannot discriminate balance —
//! only the slack, regulariser and bottleneck terms do.

use serde::{Deserialize, Serialize};

use flexpipe_model::{validate_partition, CostModel, ModelGraph, OpRange};

use crate::objective::{CutPolicy, Objective, PartitionParams, StageCost};

/// Why partitioning failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionError {
    /// Requested more stages than legal cut positions allow.
    TooManyStages {
        /// Requested stage count.
        requested: u32,
        /// Number of available cut positions.
        available: u32,
    },
    /// No partition satisfies the per-stage memory constraint.
    Infeasible {
        /// Stage count that was requested.
        stages: u32,
    },
    /// A zero stage count was requested.
    ZeroStages,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::TooManyStages {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} stages but only {available} cuts exist"
            ),
            PartitionError::Infeasible { stages } => {
                write!(f, "no memory-feasible {stages}-stage partition exists")
            }
            PartitionError::ZeroStages => write!(f, "stage count must be at least 1"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A complete partition with per-stage cost breakdowns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// The stage ranges, in pipeline order.
    pub ranges: Vec<OpRange>,
    /// Cost breakdown of each stage.
    pub stage_costs: Vec<StageCost>,
    /// The bottleneck (max) scalar stage cost, seconds.
    pub bottleneck_secs: f64,
    /// Sum of scalar stage costs, seconds.
    pub total_secs: f64,
}

impl Partition {
    /// Number of stages.
    pub fn stages(&self) -> u32 {
        self.ranges.len() as u32
    }

    /// Maximum stage parameter bytes (peak per-GPU footprint).
    pub fn max_stage_params(&self) -> u64 {
        self.stage_costs
            .iter()
            .map(|c| c.param_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Balance ratio: max stage compute / mean stage compute (1.0 = ideal).
    pub fn balance_ratio(&self) -> f64 {
        if self.stage_costs.is_empty() {
            return 1.0;
        }
        let times: Vec<f64> = self
            .stage_costs
            .iter()
            .map(|c| c.compute.as_secs_f64())
            .collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// The §5 partitioner.
#[derive(Debug, Clone)]
pub struct Partitioner {
    params: PartitionParams,
    cost_model: CostModel,
    policy: CutPolicy,
}

impl Partitioner {
    /// Creates a partitioner with the paper's default block-boundary policy.
    pub fn new(params: PartitionParams, cost_model: CostModel) -> Self {
        Partitioner {
            params,
            cost_model,
            policy: CutPolicy::BlockBoundary,
        }
    }

    /// Overrides the cut policy (ablation).
    pub fn with_policy(mut self, policy: CutPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The objective parameters.
    pub fn params(&self) -> &PartitionParams {
        &self.params
    }

    /// Partitions `g` into exactly `k` stages.
    pub fn partition(&self, g: &ModelGraph, k: u32) -> Result<Partition, PartitionError> {
        if k == 0 {
            return Err(PartitionError::ZeroStages);
        }
        let objective = Objective::new(self.params, &self.cost_model);
        let cuts = objective.cut_positions(g, self.policy);
        if (cuts.len() as u32) < k {
            return Err(PartitionError::TooManyStages {
                requested: k,
                available: cuts.len() as u32,
            });
        }

        // Positions: 0 plus every legal cut (the last cut is op_count).
        let mut pos = Vec::with_capacity(cuts.len() + 1);
        pos.push(0u32);
        pos.extend(cuts.iter().copied());
        debug_assert_eq!(*pos.last().unwrap(), g.op_count());
        let m = pos.len();

        // Precompute stage costs for all (i, j) position pairs.
        // m ≤ ops+1 (≤ ~500); O(m²) cost evaluations are cheap because the
        // graph exposes O(1)-amortisable prefix sums through range queries.
        let mut cost = vec![vec![None::<StageCost>; m]; m];
        for i in 0..m {
            for j in (i + 1)..m {
                let r = OpRange::new(pos[i], pos[j]);
                let c = objective.stage_cost(g, r);
                if c.feasible {
                    cost[i][j] = Some(c);
                }
            }
        }

        // DP over (position, stages used): minimise (bottleneck, sum).
        const INF: f64 = f64::INFINITY;
        let k = k as usize;
        let mut best = vec![vec![(INF, INF); k + 1]; m];
        let mut back = vec![vec![usize::MAX; k + 1]; m];
        best[0][0] = (0.0, 0.0);
        for s in 1..=k {
            for j in s..m {
                for i in (s - 1)..j {
                    let Some(c) = &cost[i][j] else { continue };
                    let (pb, ps) = best[i][s - 1];
                    if pb.is_infinite() {
                        continue;
                    }
                    let scalar = c.scalar(self.params.lambda);
                    let cand = (pb.max(scalar), ps + scalar);
                    if cand < best[j][s] {
                        best[j][s] = cand;
                        back[j][s] = i;
                    }
                }
            }
        }

        let (bottleneck_secs, total_secs) = best[m - 1][k];
        if bottleneck_secs.is_infinite() {
            return Err(PartitionError::Infeasible { stages: k as u32 });
        }

        // Reconstruct ranges.
        let mut bounds = vec![m - 1];
        let mut j = m - 1;
        for s in (1..=k).rev() {
            j = back[j][s];
            bounds.push(j);
        }
        bounds.reverse();
        let ranges: Vec<OpRange> = bounds
            .windows(2)
            .map(|w| OpRange::new(pos[w[0]], pos[w[1]]))
            .collect();
        debug_assert!(validate_partition(g, &ranges).is_ok());
        let stage_costs: Vec<StageCost> =
            ranges.iter().map(|&r| objective.stage_cost(g, r)).collect();
        Ok(Partition {
            ranges,
            stage_costs,
            bottleneck_secs,
            total_secs,
        })
    }

    /// The largest stage count for which a feasible partition exists
    /// (bounded by legal cuts), or `None` if even that fails.
    pub fn max_feasible_stages(&self, g: &ModelGraph) -> Option<u32> {
        let objective = Objective::new(self.params, &self.cost_model);
        let cuts = objective.cut_positions(g, self.policy).len() as u32;
        (1..=cuts).rev().find(|&k| self.partition(g, k).is_ok())
    }

    /// The smallest stage count whose partition is memory-feasible.
    pub fn min_feasible_stages(&self, g: &ModelGraph) -> Option<u32> {
        let objective = Objective::new(self.params, &self.cost_model);
        let cuts = objective.cut_positions(g, self.policy).len() as u32;
        (1..=cuts).find(|&k| self.partition(g, k).is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpipe_model::{even_layer_ranges, zoo, OpId};

    fn partitioner() -> Partitioner {
        Partitioner::new(PartitionParams::default(), CostModel::default())
    }

    #[test]
    fn produces_valid_balanced_partitions() {
        let g = zoo::opt_66b();
        let p = partitioner();
        for k in [4, 8, 16, 32] {
            let part = p.partition(&g, k).unwrap();
            assert_eq!(part.stages(), k);
            validate_partition(&g, &part.ranges).unwrap();
            assert!(
                part.balance_ratio() < 1.35,
                "{k} stages unbalanced: {}",
                part.balance_ratio()
            );
        }
    }

    #[test]
    fn dp_beats_or_matches_even_split_on_bottleneck() {
        let g = zoo::opt_66b();
        let p = partitioner();
        let cm = CostModel::default();
        let obj = Objective::new(PartitionParams::default(), &cm);
        for k in [4, 8, 16] {
            let dp = p.partition(&g, k).unwrap();
            let even = even_layer_ranges(&g, k);
            let even_bottleneck = even
                .iter()
                .map(|&r| obj.stage_cost(&g, r).scalar(p.params().lambda))
                .fold(0.0f64, f64::max);
            assert!(
                dp.bottleneck_secs <= even_bottleneck + 1e-9,
                "k={k}: dp {} > even {even_bottleneck}",
                dp.bottleneck_secs
            );
        }
    }

    #[test]
    fn memory_constraint_rules_out_tiny_stage_counts() {
        let g = zoo::opt_66b(); // 123 GiB of parameters
        let p = partitioner();
        // One stage can never fit 123 GiB in 80 GiB.
        assert_eq!(
            p.partition(&g, 1),
            Err(PartitionError::Infeasible { stages: 1 })
        );
        // Two stages fit (≈62 GiB each).
        assert!(p.partition(&g, 2).is_ok());
        assert_eq!(p.min_feasible_stages(&g), Some(2));
    }

    #[test]
    fn cuts_respect_block_policy() {
        let g = zoo::llama2_7b();
        let p = partitioner();
        let part = p.partition(&g, 8).unwrap();
        for r in &part.ranges[..part.ranges.len() - 1] {
            assert!(g.is_block_boundary(OpId(r.end - 1)));
        }
    }

    #[test]
    fn any_op_policy_allows_more_stages() {
        let g = zoo::llama2_7b();
        let block = partitioner();
        let any = partitioner().with_policy(CutPolicy::AnyOp);
        let max_block = block.max_feasible_stages(&g).unwrap();
        let max_any = any.max_feasible_stages(&g).unwrap();
        assert!(max_any > max_block);
    }

    #[test]
    fn error_cases() {
        let g = zoo::llama2_7b();
        let p = partitioner();
        assert_eq!(p.partition(&g, 0), Err(PartitionError::ZeroStages));
        let err = p.partition(&g, 1000).unwrap_err();
        assert!(matches!(err, PartitionError::TooManyStages { .. }));
    }

    #[test]
    fn small_models_partition_down_to_one_stage() {
        let g = zoo::llama2_7b(); // ~13 GiB
        let p = partitioner();
        let part = p.partition(&g, 1).unwrap();
        assert_eq!(part.stages(), 1);
        assert_eq!(part.ranges[0], OpRange::new(0, g.op_count()));
    }

    #[test]
    fn deterministic_output() {
        let g = zoo::opt_66b();
        let p = partitioner();
        let a = p.partition(&g, 8).unwrap();
        let b = p.partition(&g, 8).unwrap();
        assert_eq!(a, b);
    }
}
