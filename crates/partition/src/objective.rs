//! The Eq. (2) stage-cost objective.
//!
//! For a candidate stage `S_k` (a contiguous operator range) the paper
//! prices:
//!
//! ```text
//! cost(S_k) = t_c(S_k) + max(s_p(S_k)/B − C, 0) + λ·R(S_k)
//! ```
//!
//! - `t_c` — compute time of the stage at the profiling token count;
//! - `s_p/B − C` — parameter-streaming time not hidden by the target
//!   computation/communication overlap cycle `C`;
//! - `R` — the refactoring-potential regulariser, penalising cuts that do
//!   not respect hierarchical block boundaries (mid-block cuts both carry
//!   wider activations *and* break the merge alignment that inflight
//!   refactoring relies on).
//!
//! Subject to `s_p(S_k) ≤ M_GPU` (memory feasibility, including the KV
//! budget for the planning batch size).

use serde::{Deserialize, Serialize};

use flexpipe_model::{CostModel, ModelGraph, OpId, OpRange};
use flexpipe_sim::SimDuration;

/// Tunable parameters of the Eq. (2) objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionParams {
    /// Inter-stage bandwidth `B` in bytes/s.
    pub bandwidth: f64,
    /// Target computation/communication overlap cycle `C`.
    pub overlap_cycle: SimDuration,
    /// Regularisation weight `λ` (seconds per unit of `R`).
    pub lambda: f64,
    /// GPU memory capacity `M_GPU` in bytes.
    pub gpu_mem: u64,
    /// Tokens per pass used to evaluate `t_c` (profiling sequence length).
    pub profile_tokens: u64,
    /// Batch size assumed when checking memory feasibility.
    pub planning_batch: u32,
}

impl Default for PartitionParams {
    fn default() -> Self {
        PartitionParams {
            bandwidth: 12.5e9, // 100 Gbps
            overlap_cycle: SimDuration::from_millis(40),
            lambda: 2.0e-3,
            gpu_mem: 80 * (1 << 30),
            profile_tokens: 4096,
            planning_batch: 8,
        }
    }
}

/// Where cuts may be placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CutPolicy {
    /// Only between hierarchical blocks (the paper's default: preserves
    /// computational-graph constraints for future reconfiguration).
    BlockBoundary,
    /// After any operator (ablation mode; mid-block cuts get priced by the
    /// regulariser and wider activation transfers instead of forbidden).
    AnyOp,
}

/// Full cost breakdown of one stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    /// Compute time at the profiling token count.
    pub compute: SimDuration,
    /// Un-overlapped parameter streaming time, seconds.
    pub load_slack_secs: f64,
    /// Regulariser value `R(S_k)` (dimensionless).
    pub regularizer: f64,
    /// Stage parameter bytes.
    pub param_bytes: u64,
    /// Device memory needed at the planning batch.
    pub mem_bytes: u64,
    /// Whether the stage fits in GPU memory.
    pub feasible: bool,
}

impl StageCost {
    /// Scalar Eq. (2) cost in seconds.
    pub fn scalar(&self, lambda: f64) -> f64 {
        self.compute.as_secs_f64() + self.load_slack_secs + lambda * self.regularizer
    }
}

/// Evaluates stage costs for one model under fixed parameters.
#[derive(Debug, Clone, Copy)]
pub struct Objective<'a> {
    /// Parameters of the objective.
    pub params: PartitionParams,
    /// The calibrated cost model.
    pub cost_model: &'a CostModel,
}

impl<'a> Objective<'a> {
    /// Creates an objective over `cost_model` with `params`.
    pub fn new(params: PartitionParams, cost_model: &'a CostModel) -> Self {
        Objective { params, cost_model }
    }

    /// Prices stage `r` of `g`.
    pub fn stage_cost(&self, g: &ModelGraph, r: OpRange) -> StageCost {
        let compute = self
            .cost_model
            .stage_compute(g, r, self.params.profile_tokens);
        let param_bytes = g.range_param_bytes(r);
        let stream_secs = param_bytes as f64 / self.params.bandwidth;
        let load_slack_secs = (stream_secs - self.params.overlap_cycle.as_secs_f64()).max(0.0);
        let regularizer = self.regularizer(g, r);
        let mem_bytes = self
            .cost_model
            .stage_mem_bytes(g, r, self.params.planning_batch);
        StageCost {
            compute,
            load_slack_secs,
            regularizer,
            param_bytes,
            mem_bytes,
            feasible: mem_bytes <= self.params.gpu_mem,
        }
    }

    /// The refactoring-potential regulariser `R(S_k)`.
    ///
    /// Both cuts delimiting the stage contribute: a block-boundary cut
    /// costs its (normalised) activation width; a mid-block cut adds a
    /// fixed structural penalty on top, because it breaks merge alignment.
    pub fn regularizer(&self, g: &ModelGraph, r: OpRange) -> f64 {
        let norm = 2.0 * f64::from(g.config().d_model); // block-tail bytes/token
        let mut total = 0.0;
        for boundary in [r.start.checked_sub(1), Some(r.end - 1)]
            .into_iter()
            .flatten()
        {
            let id = OpId(boundary);
            if id.0 + 1 >= g.op_count() {
                continue; // the terminal cut is free
            }
            let act = g.cut_act_bytes_per_token(id) as f64 / norm;
            let structural = if g.is_block_boundary(id) { 0.0 } else { 4.0 };
            total += act + structural;
        }
        total
    }

    /// Legal cut positions under `policy`: indices `e` such that a stage
    /// may end with operator `e - 1` (i.e. range `.. e`).
    pub fn cut_positions(&self, g: &ModelGraph, policy: CutPolicy) -> Vec<u32> {
        match policy {
            CutPolicy::BlockBoundary => g
                .block_boundaries()
                .into_iter()
                .map(|id| id.0 + 1)
                .collect(),
            CutPolicy::AnyOp => (1..=g.op_count()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpipe_model::{even_layer_ranges, zoo};

    fn obj(cm: &CostModel) -> Objective<'_> {
        Objective::new(PartitionParams::default(), cm)
    }

    #[test]
    fn stage_cost_components_are_sane() {
        let g = zoo::opt_66b();
        let cm = CostModel::default();
        let o = obj(&cm);
        let r = even_layer_ranges(&g, 8)[3];
        let c = o.stage_cost(&g, r);
        assert!(c.compute.as_millis_f64() > 10.0);
        assert!(
            c.load_slack_secs > 0.0,
            "16 GB over 12.5 GB/s exceeds 40 ms"
        );
        assert!(c.feasible);
        assert!(c.scalar(o.params.lambda) > c.compute.as_secs_f64());
    }

    #[test]
    fn whole_model_stage_is_infeasible_for_opt() {
        let g = zoo::opt_66b();
        let cm = CostModel::default();
        let o = obj(&cm);
        let c = o.stage_cost(&g, OpRange::new(0, g.op_count()));
        assert!(!c.feasible);
    }

    #[test]
    fn regularizer_prefers_block_boundaries() {
        let g = zoo::llama2_7b();
        let cm = CostModel::default();
        let o = obj(&cm);
        // A stage ending exactly on a layer boundary...
        let ranges = even_layer_ranges(&g, 4);
        let aligned = o.regularizer(&g, ranges[1]);
        // ...versus the same stage shifted one op to end mid-block.
        let shifted = OpRange::new(ranges[1].start, ranges[1].end + 1);
        let misaligned = o.regularizer(&g, shifted);
        assert!(
            misaligned > aligned + 3.0,
            "aligned {aligned} misaligned {misaligned}"
        );
    }

    #[test]
    fn cut_positions_respect_policy() {
        let g = zoo::llama2_7b();
        let cm = CostModel::default();
        let o = obj(&cm);
        let block = o.cut_positions(&g, CutPolicy::BlockBoundary);
        let any = o.cut_positions(&g, CutPolicy::AnyOp);
        assert_eq!(any.len(), g.op_count() as usize);
        assert_eq!(block.len() as u32, g.block_count());
        // Block cuts are a subset of any-op cuts.
        assert!(block.iter().all(|p| any.contains(p)));
        // Final position present in both (needed to close the partition).
        assert!(block.contains(&g.op_count()));
    }

    #[test]
    fn load_slack_vanishes_for_small_stages() {
        let g = zoo::llama2_7b();
        let cm = CostModel::default();
        let o = obj(&cm);
        // One llama layer is ~0.4 GB → streams in ~32 ms < 40 ms cycle.
        let r = even_layer_ranges(&g, 32)[16];
        let c = o.stage_cost(&g, r);
        assert_eq!(c.load_slack_secs, 0.0);
    }
}
