//! Property-based tests of the §5 partitioner under randomized objective
//! parameters.

use proptest::prelude::*;

use flexpipe_model::{validate_partition, zoo, CostModel, OpId};
use flexpipe_partition::{CutPolicy, GranularityLattice, PartitionParams, Partitioner};
use flexpipe_sim::SimDuration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Valid partitions under random bandwidth/λ/overlap parameters: the
    /// objective may reweigh cuts but never break structure.
    #[test]
    fn random_objectives_yield_valid_partitions(
        bw_gbps in 1.0f64..400.0,
        lambda in 0.0f64..0.1,
        overlap_ms in 0u64..200,
        k in 2u32..24,
    ) {
        let graph = zoo::llama2_7b();
        let cost = CostModel::default();
        let params = PartitionParams {
            bandwidth: bw_gbps * 1e9,
            lambda,
            overlap_cycle: SimDuration::from_millis(overlap_ms),
            ..PartitionParams::default()
        };
        let partitioner = Partitioner::new(params, cost);
        let partition = partitioner.partition(&graph, k).unwrap();
        prop_assert!(validate_partition(&graph, &partition.ranges).is_ok());
        // Block policy: every interior cut on a block boundary.
        for r in &partition.ranges[..partition.ranges.len() - 1] {
            prop_assert!(graph.is_block_boundary(OpId(r.end - 1)));
        }
        // Bottleneck is at least the heaviest single mandatory cost.
        prop_assert!(partition.bottleneck_secs > 0.0);
        prop_assert!(partition.total_secs >= partition.bottleneck_secs);
    }

    /// AnyOp policy dominates BlockBoundary on bottleneck cost (a superset
    /// of cuts can only improve the optimum).
    #[test]
    fn any_op_never_worse_than_block_policy(k in 2u32..16) {
        let graph = zoo::llama2_7b();
        let cost = CostModel::default();
        let params = PartitionParams::default();
        let block = Partitioner::new(params, cost).partition(&graph, k).unwrap();
        let any = Partitioner::new(params, cost)
            .with_policy(CutPolicy::AnyOp)
            .partition(&graph, k)
            .unwrap();
        prop_assert!(any.bottleneck_secs <= block.bottleneck_secs + 1e-12);
    }

    /// Lattices built over random level subsets validate and preserve the
    /// finest boundaries.
    #[test]
    fn random_lattices_validate(levels in prop::collection::btree_set(1u32..=16, 1..5)) {
        let graph = zoo::bert_21b();
        let cost = CostModel::default();
        let partitioner = Partitioner::new(PartitionParams::default(), cost);
        let levels: Vec<u32> = levels.into_iter().collect();
        let lattice = GranularityLattice::build(&partitioner, &graph, 16, &levels, &cost).unwrap();
        lattice.validate(&graph).unwrap();
        // Every level boundary is a finest-unit boundary.
        let finest_bounds: std::collections::HashSet<u32> = lattice
            .finest()
            .ranges
            .iter()
            .map(|r| r.end)
            .collect();
        for level in lattice.levels() {
            for r in &level.ranges {
                prop_assert!(finest_bounds.contains(&r.end));
            }
        }
    }
}
