//! Streaming quantile estimation with the P² algorithm (Jain & Chlamtac,
//! 1985).
//!
//! The exact [`crate::digest::Digest`] stores every sample; for
//! long-horizon monitoring loops (FlexPipe's controller watching latency
//! quantiles over hours) a constant-memory estimator is the right tool.
//! P² maintains five markers whose heights approximate the target
//! quantile; accuracy is typically within a few percent for unimodal
//! distributions, which the property tests pin down against the exact
//! digest.

use serde::{Deserialize, Serialize};

/// Constant-memory streaming estimator of one quantile.
///
/// # Examples
///
/// ```
/// use flexpipe_metrics::p2::P2Quantile;
///
/// let mut q = P2Quantile::new(0.5);
/// for i in 1..=1001 {
///     q.observe(f64::from(i));
/// }
/// let med = q.estimate().unwrap();
/// assert!((med - 501.0).abs() < 10.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based sample ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    count: usize,
    /// Initial observations until all five markers exist.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1), got {p}");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The target quantile.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation. Non-finite values are ignored.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                for (i, &v) in self.initial.iter().enumerate() {
                    self.q[i] = v;
                }
            }
            return;
        }

        // Locate the cell containing x and update extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else if x <= self.q[4] {
            3
        } else {
            self.q[4] = x;
            3
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            let right = self.n[i + 1] - self.n[i];
            let left = self.n[i - 1] - self.n[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                // Piecewise-parabolic prediction.
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate, or `None` before five observations.
    pub fn estimate(&self) -> Option<f64> {
        match self.initial.len() {
            5 => Some(self.q[2]),
            0 => None,
            // Fewer than five samples: fall back to the nearest-rank value.
            n => {
                let mut xs = self.initial.clone();
                xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let idx = ((n as f64 - 1.0) * self.p).round() as usize;
                Some(xs[idx.min(n - 1)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::Digest;

    fn compare_with_exact(samples: &[f64], p: f64, tolerance_frac: f64) {
        let mut est = P2Quantile::new(p);
        let mut exact = Digest::new();
        for &x in samples {
            est.observe(x);
            exact.record(x);
        }
        let got = est.estimate().unwrap();
        let want = exact.quantile(p);
        let spread = exact.quantile(0.99) - exact.quantile(0.01);
        assert!(
            (got - want).abs() <= tolerance_frac * spread.max(1e-9),
            "p={p}: P2 {got} vs exact {want} (spread {spread})"
        );
    }

    fn lcg_stream(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn median_of_uniform_stream() {
        compare_with_exact(&lcg_stream(20_000, 7), 0.5, 0.02);
    }

    #[test]
    fn tail_quantiles_of_skewed_stream() {
        // Exponential-ish transform: heavy right tail.
        let xs: Vec<f64> = lcg_stream(20_000, 9)
            .into_iter()
            .map(|u| -(1.0 - u).ln())
            .collect();
        compare_with_exact(&xs, 0.9, 0.05);
        compare_with_exact(&xs, 0.99, 0.08);
    }

    #[test]
    fn small_streams_fall_back_to_exact_ranks() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), None);
        q.observe(3.0);
        assert_eq!(q.estimate(), Some(3.0));
        q.observe(1.0);
        q.observe(2.0);
        let med = q.estimate().unwrap();
        assert!((1.0..=3.0).contains(&med));
    }

    #[test]
    fn ignores_non_finite() {
        let mut q = P2Quantile::new(0.5);
        q.observe(f64::NAN);
        q.observe(f64::INFINITY);
        assert_eq!(q.count(), 0);
        for i in 0..100 {
            q.observe(f64::from(i));
        }
        assert_eq!(q.count(), 100);
        assert!(q.estimate().is_some());
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn constant_stream_is_exact() {
        let mut q = P2Quantile::new(0.9);
        for _ in 0..1000 {
            q.observe(42.0);
        }
        assert_eq!(q.estimate(), Some(42.0));
    }
}
