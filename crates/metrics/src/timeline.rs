//! Time-series recording (queue lengths, response times, CV traces).
//!
//! Fig. 9 plots response time and windowed CV over a 300-second run; the
//! [`Timeline`] recorder captures `(t, value)` points and can resample into
//! fixed windows for tabular output.

use serde::{Deserialize, Serialize};

use flexpipe_sim::{SimDuration, SimTime};

/// An append-only `(time, value)` series.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    points: Vec<(SimTime, f64)>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point; time must be non-decreasing.
    pub fn record(&mut self, at: SimTime, value: f64) {
        debug_assert!(self.points.last().is_none_or(|&(t, _)| t <= at));
        self.points.push((at, value));
    }

    /// All raw points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of values within `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in &self.points {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Maximum value within `[from, to)`, 0 when no points fall inside.
    pub fn max_in(&self, from: SimTime, to: SimTime) -> f64 {
        self.points
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|&(_, v)| v)
            .fold(0.0, f64::max)
    }

    /// Resamples into consecutive windows of `window` from zero to
    /// `horizon`, returning `(window_start_secs, mean)` rows.
    pub fn resample(&self, window: SimDuration, horizon: SimTime) -> Vec<(f64, f64)> {
        assert!(window > SimDuration::ZERO);
        let mut out = Vec::new();
        let mut start = SimTime::ZERO;
        while start < horizon {
            let end = start + window;
            out.push((start.as_secs_f64(), self.mean_in(start, end)));
            start = end;
        }
        out
    }

    /// Overall mean, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_window_queries() {
        let mut tl = Timeline::new();
        for s in 0..10 {
            tl.record(SimTime::from_secs(s), s as f64);
        }
        assert_eq!(tl.len(), 10);
        assert_eq!(
            tl.mean_in(SimTime::from_secs(0), SimTime::from_secs(5)),
            2.0
        );
        assert_eq!(
            tl.max_in(SimTime::from_secs(5), SimTime::from_secs(10)),
            9.0
        );
        assert_eq!(tl.mean(), 4.5);
    }

    #[test]
    fn resample_produces_fixed_rows() {
        let mut tl = Timeline::new();
        for s in 0..100 {
            tl.record(SimTime::from_secs(s), 1.0);
        }
        let rows = tl.resample(SimDuration::from_secs(10), SimTime::from_secs(100));
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|&(_, m)| (m - 1.0).abs() < 1e-9));
    }

    #[test]
    fn empty_windows_are_zero() {
        let tl = Timeline::new();
        assert_eq!(tl.mean_in(SimTime::ZERO, SimTime::from_secs(10)), 0.0);
        assert_eq!(tl.mean(), 0.0);
        let rows = tl.resample(SimDuration::from_secs(5), SimTime::from_secs(10));
        assert_eq!(rows.len(), 2);
    }
}
