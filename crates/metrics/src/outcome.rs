//! Per-request outcome records and goodput accounting.
//!
//! Fig. 8 decomposes end-to-end latency into queue / execution /
//! communication time and reports goodput (completions within SLO) next to
//! it; [`RequestOutcome`] carries exactly those fields and [`OutcomeLog`]
//! aggregates them.

use serde::{Deserialize, Serialize};

use flexpipe_sim::{SimDuration, SimTime};

use crate::digest::Digest;

/// The measured life of one completed request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Request id.
    pub id: u64,
    /// Gateway arrival time.
    pub arrival: SimTime,
    /// Completion time of the last output token.
    pub completion: SimTime,
    /// Time spent queued before first execution.
    pub queue: SimDuration,
    /// Time spent in stage compute.
    pub execution: SimDuration,
    /// Time spent in inter-stage communication.
    pub communication: SimDuration,
    /// Time from first execution to last prefill stage completing
    /// (the Fig. 13 metric).
    pub prefill: SimDuration,
    /// The request's SLO.
    pub slo: SimDuration,
    /// Prompt tokens.
    pub prompt_tokens: u32,
    /// Generated tokens.
    pub output_tokens: u32,
}

impl RequestOutcome {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.completion.saturating_since(self.arrival)
    }

    /// Whether the request met its SLO.
    pub fn within_slo(&self) -> bool {
        self.latency() <= self.slo
    }
}

/// Aggregated outcomes of one experiment run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OutcomeLog {
    outcomes: Vec<RequestOutcome>,
}

/// Summary statistics of an [`OutcomeLog`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct OutcomeSummary {
    /// Completed request count.
    pub completed: usize,
    /// Completions within SLO.
    pub within_slo: usize,
    /// Goodput rate: within-SLO completions / completed.
    pub goodput_rate: f64,
    /// Goodput throughput: within-SLO completions per second of span.
    pub goodput_per_sec: f64,
    /// Mean end-to-end latency, seconds.
    pub mean_latency: f64,
    /// P50 latency, seconds.
    pub p50_latency: f64,
    /// P99 latency, seconds.
    pub p99_latency: f64,
    /// Mean queue time, seconds.
    pub mean_queue: f64,
    /// Mean execution time, seconds.
    pub mean_execution: f64,
    /// Mean communication time, seconds.
    pub mean_communication: f64,
    /// Mean prefill latency, seconds.
    pub mean_prefill: f64,
}

impl OutcomeLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request.
    pub fn record(&mut self, outcome: RequestOutcome) {
        self.outcomes.push(outcome);
    }

    /// All outcomes, in completion order until [`OutcomeLog::canonicalize`]
    /// re-sorts them.
    pub fn outcomes(&self) -> &[RequestOutcome] {
        &self.outcomes
    }

    /// Re-sorts the log by request id. Completion order is a schedule
    /// artifact — two requests finishing at the same virtual instant on
    /// different instances land in pop order — so reports canonicalize
    /// before serializing: equivalent schedules then produce byte-identical
    /// outcome lists and identical float-summation order in the summary
    /// means.
    pub fn canonicalize(&mut self) {
        self.outcomes.sort_by_key(|o| o.id);
    }

    /// Number of completions.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether nothing completed.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Latency digest over all completions.
    pub fn latency_digest(&self) -> Digest {
        let mut d = Digest::new();
        for o in &self.outcomes {
            d.record(o.latency().as_secs_f64());
        }
        d
    }

    /// Prefill latency digest.
    pub fn prefill_digest(&self) -> Digest {
        let mut d = Digest::new();
        for o in &self.outcomes {
            d.record(o.prefill.as_secs_f64());
        }
        d
    }

    /// Latency digest restricted to a completion-time window.
    pub fn latency_digest_in(&self, from: SimTime, to: SimTime) -> Digest {
        let mut d = Digest::new();
        for o in &self.outcomes {
            if o.completion >= from && o.completion < to {
                d.record(o.latency().as_secs_f64());
            }
        }
        d
    }

    /// Full summary over a measurement span of `span_secs` seconds.
    pub fn summarize(&self, span_secs: f64) -> OutcomeSummary {
        if self.outcomes.is_empty() {
            return OutcomeSummary::default();
        }
        let n = self.outcomes.len();
        let within = self.outcomes.iter().filter(|o| o.within_slo()).count();
        let mut lat = self.latency_digest();
        let mean = |f: fn(&RequestOutcome) -> SimDuration| -> f64 {
            self.outcomes
                .iter()
                .map(|o| f(o).as_secs_f64())
                .sum::<f64>()
                / n as f64
        };
        OutcomeSummary {
            completed: n,
            within_slo: within,
            goodput_rate: within as f64 / n as f64,
            goodput_per_sec: if span_secs > 0.0 {
                within as f64 / span_secs
            } else {
                0.0
            },
            mean_latency: lat.mean(),
            p50_latency: lat.quantile(0.5),
            p99_latency: lat.quantile(0.99),
            mean_queue: mean(|o| o.queue),
            mean_execution: mean(|o| o.execution),
            mean_communication: mean(|o| o.communication),
            mean_prefill: mean(|o| o.prefill),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, arrival_s: u64, latency_ms: u64, slo_s: u64) -> RequestOutcome {
        let arrival = SimTime::from_secs(arrival_s);
        RequestOutcome {
            id,
            arrival,
            completion: arrival + SimDuration::from_millis(latency_ms),
            queue: SimDuration::from_millis(latency_ms / 2),
            execution: SimDuration::from_millis(latency_ms / 4),
            communication: SimDuration::from_millis(latency_ms / 4),
            prefill: SimDuration::from_millis(latency_ms / 8),
            slo: SimDuration::from_secs(slo_s),
            prompt_tokens: 128,
            output_tokens: 16,
        }
    }

    #[test]
    fn latency_and_slo() {
        let o = outcome(0, 10, 1500, 1);
        assert_eq!(o.latency(), SimDuration::from_millis(1500));
        assert!(!o.within_slo());
        let ok = outcome(1, 10, 900, 1);
        assert!(ok.within_slo());
    }

    #[test]
    fn summary_accounts_goodput() {
        let mut log = OutcomeLog::new();
        log.record(outcome(0, 0, 500, 1)); // within
        log.record(outcome(1, 1, 2000, 1)); // violate
        log.record(outcome(2, 2, 800, 1)); // within
        let s = log.summarize(10.0);
        assert_eq!(s.completed, 3);
        assert_eq!(s.within_slo, 2);
        assert!((s.goodput_rate - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.goodput_per_sec - 0.2).abs() < 1e-9);
        assert!(s.mean_queue > 0.0);
    }

    #[test]
    fn windowed_digest_filters() {
        let mut log = OutcomeLog::new();
        log.record(outcome(0, 0, 100, 5));
        log.record(outcome(1, 100, 100, 5));
        let d = log.latency_digest_in(SimTime::from_secs(50), SimTime::from_secs(200));
        assert_eq!(d.count(), 1);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = OutcomeLog::new().summarize(10.0);
        assert_eq!(s.completed, 0);
        assert_eq!(s.goodput_per_sec, 0.0);
    }
}
