//! Disruption and recovery accounting.
//!
//! When the platform revokes capacity (spot preemption, GPU failure) the
//! serving engine records what was lost and how long the deployment took
//! to return to full service. The [`DisruptionLedger`] is the engine-side
//! accumulator; it finalizes into a serializable [`DisruptionStats`]
//! carried by every run report, from which the fleet derives per-cell
//! recovery metrics (time-to-recover, replayed requests, SLO attainment
//! inside disruption windows).

use serde::{Deserialize, Serialize};

use flexpipe_sim::SimTime;

/// Aggregate disruption outcome of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DisruptionStats {
    /// Revocation events executed (a multi-GPU preemption counts once).
    pub revocation_events: u32,
    /// Individual GPUs revoked across all events.
    pub gpus_revoked: u32,
    /// Individual GPUs restored by capacity returns.
    pub gpus_restored: u32,
    /// In-flight requests whose progress a revocation destroyed.
    pub requests_aborted: u32,
    /// Aborted requests re-enqueued at the gateway for a fresh attempt.
    pub requests_replayed: u32,
    /// Tokens of discarded work: prompt tokens that must re-prefill plus
    /// generated tokens thrown away with their KV.
    pub tokens_lost: u64,
    /// Revocations still unrecovered at the horizon (their window closes
    /// at the horizon, so time-to-recover stays well-defined).
    pub unrecovered: u32,
    /// One `(revoked_at, recovered_at)` window per revocation event,
    /// seconds, in event order.
    pub recovery_windows: Vec<(f64, f64)>,
}

impl DisruptionStats {
    /// Whether any disruption fired during the run.
    pub fn any(&self) -> bool {
        self.revocation_events > 0
    }

    /// Time-to-recover of each closed window, seconds.
    pub fn recovery_times(&self) -> impl Iterator<Item = f64> + '_ {
        self.recovery_windows.iter().map(|&(s, e)| (e - s).max(0.0))
    }

    /// Mean time-to-recover, 0 when no disruption fired.
    pub fn mean_time_to_recover(&self) -> f64 {
        let n = self.recovery_windows.len();
        if n == 0 {
            return 0.0;
        }
        self.recovery_times().sum::<f64>() / n as f64
    }

    /// Worst time-to-recover, 0 when no disruption fired.
    pub fn max_time_to_recover(&self) -> f64 {
        self.recovery_times().fold(0.0, f64::max)
    }

    /// Whether `t_secs` falls inside any recovery window.
    pub fn in_disruption_window(&self, t_secs: f64) -> bool {
        self.recovery_windows
            .iter()
            .any(|&(s, e)| t_secs >= s && t_secs <= e)
    }
}

/// Engine-side accumulator for disruption accounting.
///
/// A revocation *opens* a window; the engine *closes* every open window at
/// the first instant the deployment is back to full service (no instance
/// loading, preparing, paused or crippled, and at least one serving).
/// Overlapping revocations therefore share a recovery point — the fleet
/// cares about service restoration, not per-event bookkeeping fictions.
#[derive(Debug, Clone, Default)]
pub struct DisruptionLedger {
    open: Vec<SimTime>,
    stats: DisruptionStats,
}

impl DisruptionLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one revocation event of `gpus` devices at `now`.
    pub fn record_revocation(&mut self, now: SimTime, gpus: u32) {
        self.stats.revocation_events += 1;
        self.stats.gpus_revoked += gpus;
        self.open.push(now);
    }

    /// Records restored capacity.
    pub fn record_restored(&mut self, gpus: u32) {
        self.stats.gpus_restored += gpus;
    }

    /// Records requests whose in-flight progress was destroyed.
    pub fn record_aborted(&mut self, requests: u32) {
        self.stats.requests_aborted += requests;
    }

    /// Records aborted requests re-enqueued for replay.
    pub fn record_replayed(&mut self, requests: u32) {
        self.stats.requests_replayed += requests;
    }

    /// Records tokens of discarded work.
    pub fn record_tokens_lost(&mut self, tokens: u64) {
        self.stats.tokens_lost += tokens;
    }

    /// Whether any revocation is still awaiting recovery.
    pub fn has_open(&self) -> bool {
        !self.open.is_empty()
    }

    /// Closes every open window at `now` (service is fully restored).
    pub fn close_open(&mut self, now: SimTime) {
        for t in self.open.drain(..) {
            self.stats
                .recovery_windows
                .push((t.as_secs_f64(), now.as_secs_f64()));
        }
    }

    /// Closes windows still open at the horizon, marking them unrecovered.
    pub fn finalize(&mut self, horizon: SimTime) {
        self.stats.unrecovered += self.open.len() as u32;
        self.close_open(horizon);
    }

    /// Consumes the ledger into its stats.
    pub fn into_stats(self) -> DisruptionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_open_and_close() {
        let mut l = DisruptionLedger::new();
        assert!(!l.has_open());
        l.record_revocation(SimTime::from_secs(10), 2);
        assert!(l.has_open());
        l.close_open(SimTime::from_secs(14));
        let mut l2 = l.clone();
        l2.finalize(SimTime::from_secs(100));
        let s = l2.into_stats();
        assert_eq!(s.revocation_events, 1);
        assert_eq!(s.gpus_revoked, 2);
        assert_eq!(s.unrecovered, 0);
        assert_eq!(s.recovery_windows, vec![(10.0, 14.0)]);
        assert!((s.mean_time_to_recover() - 4.0).abs() < 1e-9);
        assert!((s.max_time_to_recover() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_revocations_share_the_recovery_point() {
        let mut l = DisruptionLedger::new();
        l.record_revocation(SimTime::from_secs(5), 1);
        l.record_revocation(SimTime::from_secs(8), 1);
        l.close_open(SimTime::from_secs(20));
        l.finalize(SimTime::from_secs(100));
        let s = l.into_stats();
        assert_eq!(s.recovery_windows, vec![(5.0, 20.0), (8.0, 20.0)]);
        assert!((s.mean_time_to_recover() - 13.5).abs() < 1e-9);
        assert!(s.in_disruption_window(6.0));
        assert!(!s.in_disruption_window(21.0));
    }

    #[test]
    fn finalize_marks_unrecovered() {
        let mut l = DisruptionLedger::new();
        l.record_revocation(SimTime::from_secs(90), 4);
        l.finalize(SimTime::from_secs(100));
        let s = l.into_stats();
        assert_eq!(s.unrecovered, 1);
        assert_eq!(s.recovery_windows, vec![(90.0, 100.0)]);
    }

    #[test]
    fn loss_counters_accumulate() {
        let mut l = DisruptionLedger::new();
        l.record_aborted(3);
        l.record_replayed(3);
        l.record_tokens_lost(1000);
        l.record_restored(2);
        let s = l.into_stats();
        assert_eq!(s.requests_aborted, 3);
        assert_eq!(s.requests_replayed, 3);
        assert_eq!(s.tokens_lost, 1000);
        assert_eq!(s.gpus_restored, 2);
        assert!(!s.any());
        assert_eq!(s.mean_time_to_recover(), 0.0);
    }
}
