//! Instrumentation for the FlexPipe experiments: latency digests, goodput
//! and SLO accounting, stall detection, utilisation ledgers and tabular
//! output.
//!
//! Every serving run produces an [`outcome::OutcomeLog`]; the figure
//! harnesses in `flexpipe-bench` post-process it with [`stall`] (Fig. 11),
//! [`util`] (Fig. 12, §9.6) and [`digest`]/[`timeline`] (Figs. 8–10, 13).

#![warn(missing_docs)]

pub mod digest;
pub mod outcome;
pub mod p2;
pub mod recovery;
pub mod stall;
pub mod table;
pub mod timeline;
pub mod util;

pub use digest::Digest;
pub use outcome::{OutcomeLog, OutcomeSummary, RequestOutcome};
pub use p2::P2Quantile;
pub use recovery::{DisruptionLedger, DisruptionStats};
pub use stall::{analyze_stalls, StallConfig, StallEpisode, StallReport};
pub use table::{fmt_f, fmt_pct, fmt_secs, Table};
pub use timeline::Timeline;
pub use util::UtilizationLedger;
