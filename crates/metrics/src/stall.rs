//! Pipeline stall detection and recovery measurement (paper §9.3).
//!
//! The paper's methodology: a *stall* begins when response latency exceeds
//! 1.5x the baseline (the P25 latency under normal operation) and *recovers*
//! when latency returns below 1.2x baseline; the elapsed time is the
//! recovery duration (Fig. 11 reports its distribution per system and CV).

use serde::{Deserialize, Serialize};

use flexpipe_sim::{SimDuration, SimTime};

use crate::digest::Digest;
use crate::outcome::OutcomeLog;

/// Parameters of the stall detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StallConfig {
    /// Stall begins above `enter_factor` x baseline.
    pub enter_factor: f64,
    /// Stall ends at or below `exit_factor` x baseline.
    pub exit_factor: f64,
    /// Quantile of the calibration latencies used as baseline (P25).
    pub baseline_quantile: f64,
    /// Smoothing window: latency is averaged over this many completions.
    pub smooth: usize,
    /// Normalise latency per output token before thresholding. Removes
    /// output-length variance so stalls reflect system state, not the
    /// length mix of recently completed requests.
    pub per_token: bool,
}

impl Default for StallConfig {
    fn default() -> Self {
        StallConfig {
            enter_factor: 1.5,
            exit_factor: 1.2,
            baseline_quantile: 0.25,
            smooth: 8,
            per_token: true,
        }
    }
}

/// One detected stall episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StallEpisode {
    /// When latency first crossed the stall threshold.
    pub start: SimTime,
    /// When latency recovered below the exit threshold.
    pub end: SimTime,
}

impl StallEpisode {
    /// Recovery duration of this episode.
    pub fn recovery(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Result of stall analysis over a run.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct StallReport {
    /// Baseline latency (calibration quantile), seconds.
    pub baseline_secs: f64,
    /// All completed episodes.
    pub episodes: Vec<StallEpisode>,
    /// Whether the run ended inside an unrecovered stall.
    pub unrecovered: bool,
}

impl StallReport {
    /// Median recovery time across episodes, seconds (0 when none).
    pub fn median_recovery_secs(&self) -> f64 {
        if self.episodes.is_empty() {
            return 0.0;
        }
        let mut d = Digest::new();
        for e in &self.episodes {
            d.record(e.recovery().as_secs_f64());
        }
        d.quantile(0.5)
    }

    /// Mean recovery time, seconds.
    pub fn mean_recovery_secs(&self) -> f64 {
        if self.episodes.is_empty() {
            return 0.0;
        }
        self.episodes
            .iter()
            .map(|e| e.recovery().as_secs_f64())
            .sum::<f64>()
            / self.episodes.len() as f64
    }

    /// Fraction of the run spent stalled, given the run span.
    pub fn stall_fraction(&self, span: SimDuration) -> f64 {
        if span == SimDuration::ZERO {
            return 0.0;
        }
        let stalled: f64 = self
            .episodes
            .iter()
            .map(|e| e.recovery().as_secs_f64())
            .sum();
        stalled / span.as_secs_f64()
    }
}

/// Analyzes a completed run for stall episodes.
///
/// The baseline is calibrated from the first `calibration_fraction` of
/// completions (which the experiments arrange to be unloaded/normal
/// operation), then the smoothed latency series is scanned for
/// enter/exit crossings.
pub fn analyze_stalls(
    log: &OutcomeLog,
    config: StallConfig,
    calibration_fraction: f64,
) -> StallReport {
    let outcomes = log.outcomes();
    if outcomes.len() < 10 {
        return StallReport::default();
    }
    let signal = |o: &crate::outcome::RequestOutcome| -> f64 {
        let lat = o.latency().as_secs_f64();
        if config.per_token {
            lat / f64::from(o.output_tokens.max(1))
        } else {
            lat
        }
    };
    let calib_n = ((outcomes.len() as f64 * calibration_fraction) as usize).max(5);
    let mut calib = Digest::new();
    for o in &outcomes[..calib_n.min(outcomes.len())] {
        calib.record(signal(o));
    }
    let baseline = calib.quantile(config.baseline_quantile);
    if baseline <= 0.0 {
        return StallReport::default();
    }

    let mut episodes = Vec::new();
    let mut in_stall: Option<SimTime> = None;
    let smooth = config.smooth.max(1);
    let mut window: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
    for o in outcomes {
        window.push_back(signal(o));
        if window.len() > smooth {
            window.pop_front();
        }
        let avg = window.iter().sum::<f64>() / window.len() as f64;
        match in_stall {
            None => {
                if avg > config.enter_factor * baseline {
                    in_stall = Some(o.completion);
                }
            }
            Some(start) => {
                if avg <= config.exit_factor * baseline {
                    episodes.push(StallEpisode {
                        start,
                        end: o.completion,
                    });
                    in_stall = None;
                }
            }
        }
    }
    StallReport {
        baseline_secs: baseline,
        episodes,
        unrecovered: in_stall.is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::RequestOutcome;

    fn run_with_latencies(lat_ms: &[u64]) -> OutcomeLog {
        let mut log = OutcomeLog::new();
        for (i, &ms) in lat_ms.iter().enumerate() {
            let arrival = SimTime::from_millis(i as u64 * 100);
            log.record(RequestOutcome {
                id: i as u64,
                arrival,
                completion: arrival + SimDuration::from_millis(ms),
                queue: SimDuration::ZERO,
                execution: SimDuration::from_millis(ms),
                communication: SimDuration::ZERO,
                prefill: SimDuration::ZERO,
                slo: SimDuration::from_secs(10),
                prompt_tokens: 1,
                output_tokens: 1,
            });
        }
        log
    }

    #[test]
    fn detects_single_stall_and_recovery() {
        // 40 normal completions at 100 ms, a burst at 400 ms, recovery.
        let mut lat = vec![100u64; 40];
        lat.extend(vec![400u64; 20]);
        lat.extend(vec![100u64; 40]);
        let log = run_with_latencies(&lat);
        let report = analyze_stalls(&log, StallConfig::default(), 0.3);
        assert!((report.baseline_secs - 0.1).abs() < 1e-9);
        assert_eq!(report.episodes.len(), 1);
        assert!(!report.unrecovered);
        assert!(report.median_recovery_secs() > 0.0);
    }

    #[test]
    fn quiet_run_has_no_stalls() {
        let log = run_with_latencies(&vec![100u64; 100]);
        let report = analyze_stalls(&log, StallConfig::default(), 0.3);
        assert!(report.episodes.is_empty());
        assert_eq!(report.median_recovery_secs(), 0.0);
    }

    #[test]
    fn unrecovered_stall_is_flagged() {
        let mut lat = vec![100u64; 40];
        lat.extend(vec![500u64; 60]);
        let log = run_with_latencies(&lat);
        let report = analyze_stalls(&log, StallConfig::default(), 0.3);
        assert!(report.unrecovered);
    }

    #[test]
    fn multiple_episodes_counted() {
        let mut lat = Vec::new();
        for _ in 0..3 {
            lat.extend(vec![100u64; 30]);
            lat.extend(vec![400u64; 15]);
        }
        lat.extend(vec![100u64; 30]);
        let log = run_with_latencies(&lat);
        let report = analyze_stalls(&log, StallConfig::default(), 0.2);
        assert_eq!(report.episodes.len(), 3);
    }

    #[test]
    fn short_runs_return_default() {
        let log = run_with_latencies(&[100, 200]);
        let report = analyze_stalls(&log, StallConfig::default(), 0.3);
        assert_eq!(report.episodes.len(), 0);
        assert_eq!(report.baseline_secs, 0.0);
    }
}
