//! Aligned-table and CSV emission for experiment output.
//!
//! The bench binaries print each paper artefact as an aligned text table
//! (mirroring the paper's rows/series) and can additionally dump CSV for
//! plotting.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are pre-formatted strings).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:>width$}", cell, width = widths[i]);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders CSV (header + rows, comma-separated, no quoting of commas —
    /// numeric experiment output never contains them).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a float with `digits` decimals.
pub fn fmt_f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats seconds adaptively (ms below 1 s).
pub fn fmt_secs(x: f64) -> String {
    if x < 1.0 {
        format!("{:.1}ms", x * 1e3)
    } else {
        format!("{x:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("long-name"));
        // Every data line has the same width.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(lines[1].len(), lines[2].len().max(lines[1].len()));
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.5), "50.0%");
        assert_eq!(fmt_secs(0.0093), "9.3ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
    }
}
