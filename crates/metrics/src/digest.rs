//! Quantile digests for latency distributions.
//!
//! Experiments at this scale complete at most a few hundred thousand
//! requests, so an exact sample digest (sort-on-demand with a dirty flag)
//! is both simpler and more accurate than streaming sketches; the paper's
//! percentile plots (Fig. 10, Fig. 13) need faithful tails.

use serde::{Deserialize, Serialize};

/// Exact sample quantile digest.
///
/// # Examples
///
/// ```
/// use flexpipe_metrics::digest::Digest;
///
/// let mut d = Digest::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     d.record(x);
/// }
/// assert_eq!(d.quantile(0.5), 2.5);
/// assert_eq!(d.quantile(1.0), 4.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Digest {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

impl Digest {
    /// Creates an empty digest.
    pub fn new() -> Self {
        Digest {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one observation. Non-finite values are rejected.
    pub fn record(&mut self, x: f64) {
        if x.is_finite() {
            self.samples.push(x);
            self.sorted = false;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether the digest holds no observations.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("non-finite rejected at record"));
            self.sorted = true;
        }
    }

    /// Linear-interpolated quantile `q ∈ [0, 1]`; 0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.samples[lo]
        } else {
            let frac = pos - lo as f64;
            self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
        }
    }

    /// The standard evaluation percentiles (P50/P75/P90/P95/P99).
    pub fn percentile_row(&mut self) -> [f64; 5] {
        [
            self.quantile(0.50),
            self.quantile(0.75),
            self.quantile(0.90),
            self.quantile(0.95),
            self.quantile(0.99),
        ]
    }

    /// Maximum observation, 0 when empty.
    pub fn max(&mut self) -> f64 {
        self.quantile(1.0)
    }

    /// Minimum observation, 0 when empty.
    pub fn min(&mut self) -> f64 {
        self.quantile(0.0)
    }

    /// Merges another digest into this one.
    pub fn merge(&mut self, other: &Digest) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_interpolate() {
        let mut d = Digest::new();
        for x in 1..=100 {
            d.record(f64::from(x));
        }
        assert!((d.quantile(0.5) - 50.5).abs() < 1e-9);
        assert!((d.quantile(0.99) - 99.01).abs() < 1e-9);
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 100.0);
    }

    #[test]
    fn empty_digest_is_zero() {
        let mut d = Digest::new();
        assert_eq!(d.quantile(0.5), 0.0);
        assert_eq!(d.mean(), 0.0);
        assert!(d.is_empty());
    }

    #[test]
    fn rejects_non_finite() {
        let mut d = Digest::new();
        d.record(f64::NAN);
        d.record(f64::INFINITY);
        d.record(2.0);
        assert_eq!(d.count(), 1);
        assert_eq!(d.quantile(0.5), 2.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Digest::new();
        let mut b = Digest::new();
        a.record(1.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.quantile(0.5), 2.0);
    }

    #[test]
    fn interleaved_record_and_query() {
        let mut d = Digest::new();
        d.record(5.0);
        assert_eq!(d.quantile(0.5), 5.0);
        d.record(1.0);
        assert_eq!(d.quantile(0.0), 1.0);
        d.record(9.0);
        assert_eq!(d.quantile(0.5), 5.0);
    }

    #[test]
    fn percentile_row_is_monotone() {
        let mut d = Digest::new();
        let mut x = 1.0;
        for _ in 0..1000 {
            x = (x * 1.13) % 97.0;
            d.record(x);
        }
        let row = d.percentile_row();
        assert!(row.windows(2).all(|w| w[0] <= w[1]), "{row:?}");
    }
}
