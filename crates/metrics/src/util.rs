//! GPU utilisation and allocation accounting.
//!
//! Fig. 12 plots goodput against *GPU utilisation*: the fraction of
//! GPU-seconds the deployment held that were spent computing. The ledger
//! records busy intervals per GPU plus the allocation timeline (how many
//! GPUs were held at each moment), from which both utilisation and the
//! "always-on reservation" case-study numbers (§9.6) derive.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use flexpipe_sim::{SimDuration, SimTime};

/// Busy-time and allocation ledger.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UtilizationLedger {
    /// Total busy seconds per GPU id.
    busy: HashMap<u32, f64>,
    /// Allocation change events: (time, +1/-1).
    alloc_events: Vec<(SimTime, i32)>,
}

impl UtilizationLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `busy` seconds of compute on `gpu`.
    pub fn record_busy(&mut self, gpu: u32, busy: SimDuration) {
        *self.busy.entry(gpu).or_insert(0.0) += busy.as_secs_f64();
    }

    /// Records that one GPU was acquired at `at`.
    pub fn record_acquire(&mut self, at: SimTime) {
        self.alloc_events.push((at, 1));
    }

    /// Records that one GPU was released at `at`.
    pub fn record_release(&mut self, at: SimTime) {
        self.alloc_events.push((at, -1));
    }

    /// Total busy GPU-seconds.
    pub fn total_busy_secs(&self) -> f64 {
        self.busy.values().sum()
    }

    /// Number of distinct GPUs that did any work.
    pub fn gpus_used(&self) -> usize {
        self.busy.len()
    }

    /// Integral of allocated GPUs over time, in GPU-seconds, up to `end`.
    pub fn allocated_gpu_secs(&self, end: SimTime) -> f64 {
        let mut events = self.alloc_events.clone();
        events.sort();
        let mut held = 0i64;
        let mut last = SimTime::ZERO;
        let mut total = 0.0;
        for (t, delta) in events {
            let t = t.min(end);
            total += held as f64 * t.saturating_since(last).as_secs_f64();
            held += i64::from(delta);
            last = t;
        }
        total += held as f64 * end.saturating_since(last).as_secs_f64();
        total
    }

    /// Peak number of simultaneously allocated GPUs.
    pub fn peak_allocated(&self) -> u32 {
        let mut events = self.alloc_events.clone();
        events.sort();
        let mut held = 0i64;
        let mut peak = 0i64;
        for (_, delta) in events {
            held += i64::from(delta);
            peak = peak.max(held);
        }
        peak.max(0) as u32
    }

    /// Mean number of allocated GPUs over `[0, end)`.
    pub fn mean_allocated(&self, end: SimTime) -> f64 {
        if end == SimTime::ZERO {
            return 0.0;
        }
        self.allocated_gpu_secs(end) / end.as_secs_f64()
    }

    /// Utilisation: busy GPU-seconds / allocated GPU-seconds (0..1+).
    ///
    /// Values near 1 mean held GPUs computed constantly; static systems
    /// holding peak capacity idle show low values here.
    pub fn utilization(&self, end: SimTime) -> f64 {
        let alloc = self.allocated_gpu_secs(end);
        if alloc <= 0.0 {
            return 0.0;
        }
        (self.total_busy_secs() / alloc).min(1.0)
    }

    /// Utilisation against a fixed fleet of `fleet` GPUs over `[0, end)`
    /// (the denominator Fig. 12 uses: the whole testbed).
    pub fn fleet_utilization(&self, fleet: u32, end: SimTime) -> f64 {
        let denom = f64::from(fleet) * end.as_secs_f64();
        if denom <= 0.0 {
            return 0.0;
        }
        (self.total_busy_secs() / denom).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_accumulates_per_gpu() {
        let mut l = UtilizationLedger::new();
        l.record_busy(0, SimDuration::from_secs(2));
        l.record_busy(0, SimDuration::from_secs(3));
        l.record_busy(1, SimDuration::from_secs(1));
        assert_eq!(l.total_busy_secs(), 6.0);
        assert_eq!(l.gpus_used(), 2);
    }

    #[test]
    fn allocation_integral() {
        let mut l = UtilizationLedger::new();
        l.record_acquire(SimTime::from_secs(0));
        l.record_acquire(SimTime::from_secs(10));
        l.record_release(SimTime::from_secs(20));
        // [0,10): 1 GPU; [10,20): 2 GPUs; [20,30): 1 GPU = 10+20+10.
        assert_eq!(l.allocated_gpu_secs(SimTime::from_secs(30)), 40.0);
        assert_eq!(l.peak_allocated(), 2);
        assert!((l.mean_allocated(SimTime::from_secs(30)) - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_ratio() {
        let mut l = UtilizationLedger::new();
        l.record_acquire(SimTime::ZERO);
        l.record_busy(0, SimDuration::from_secs(25));
        assert!((l.utilization(SimTime::from_secs(100)) - 0.25).abs() < 1e-9);
        assert!((l.fleet_utilization(10, SimTime::from_secs(100)) - 0.025).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_is_zero() {
        let l = UtilizationLedger::new();
        assert_eq!(l.utilization(SimTime::from_secs(10)), 0.0);
        assert_eq!(l.peak_allocated(), 0);
    }

    #[test]
    fn out_of_order_events_are_sorted() {
        let mut l = UtilizationLedger::new();
        l.record_release(SimTime::from_secs(20));
        l.record_acquire(SimTime::from_secs(0));
        assert_eq!(l.allocated_gpu_secs(SimTime::from_secs(30)), 20.0);
    }
}
