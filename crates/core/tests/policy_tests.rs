//! End-to-end tests of the FlexPipe policy on the serving substrate.

use std::sync::Arc;

use flexpipe_baselines::StaticPipeline;
use flexpipe_cluster::{BackgroundProfile, ClusterSpec, TierConfig};
use flexpipe_core::{FlexPipeConfig, FlexPipePolicy, GranularityParams};
use flexpipe_model::{zoo, CostModel, ModelGraph};
use flexpipe_partition::{GranularityLattice, PartitionParams, Partitioner};
use flexpipe_serving::{ControlPolicy, Engine, EngineConfig, RunReport, Scenario};
use flexpipe_sim::{SimDuration, SimRng, SimTime};
use flexpipe_workload::{ArrivalSpec, LengthProfile, Workload, WorkloadSpec};

fn artifacts() -> (Arc<ModelGraph>, Arc<GranularityLattice>) {
    let graph = zoo::llama2_7b();
    let cm = CostModel::default();
    let p = Partitioner::new(PartitionParams::default(), cm);
    let lattice = GranularityLattice::build(&p, &graph, 8, &[1, 2, 4, 8], &cm).unwrap();
    (Arc::new(graph), Arc::new(lattice))
}

fn workload(cv: f64, rate: f64, horizon: f64, seed: u64) -> Workload {
    WorkloadSpec {
        arrivals: ArrivalSpec::GammaRenewal { rate, cv },
        lengths: LengthProfile::fixed(256, 24),
        slo: SimDuration::from_secs(5),
        slo_per_output_token: SimDuration::ZERO,
        horizon_secs: horizon,
    }
    .generate(&mut SimRng::seed(seed))
}

fn run(workload: Workload, horizon: f64, policy: Box<dyn ControlPolicy>, seed: u64) -> RunReport {
    let (graph, lattice) = artifacts();
    let scenario = Scenario {
        config: EngineConfig::default(),
        cluster: ClusterSpec::paper_testbed(),
        background: BackgroundProfile::testbed_like(),
        tier: TierConfig::default(),
        cost: CostModel::default(),
        workload,
        disruptions: Default::default(),
        horizon: SimTime::from_secs_f64(horizon + 40.0),
        seed,
    };
    Engine::new(scenario, graph, lattice, policy).run()
}

fn flexpipe_cfg() -> FlexPipeConfig {
    FlexPipeConfig {
        granularity: GranularityParams {
            base_stages: 2,
            mean_prompt_tokens: 256.0,
            mean_output_tokens: 24.0,
            ..GranularityParams::default()
        },
        peak_gpus: 8,
        min_dwell: SimDuration::from_secs(6),
        ..FlexPipeConfig::default()
    }
}

#[test]
fn flexpipe_serves_stable_traffic_without_thrashing() {
    let w = workload(0.8, 6.0, 120.0, 11);
    let report = run(w, 120.0, Box::new(FlexPipePolicy::new(flexpipe_cfg())), 11);
    assert!(
        report.completion_rate() > 0.97,
        "rate {}",
        report.completion_rate()
    );
    // Stable CV near the base level: the policy must not oscillate.
    assert!(report.refactors <= 2, "refactors {}", report.refactors);
    assert!(report.summary.goodput_rate > 0.85);
}

#[test]
fn flexpipe_adapts_when_burstiness_rises() {
    // Calm first half, violent bursts second half.
    let mut w = workload(0.8, 6.0, 100.0, 13);
    let bursty = WorkloadSpec {
        arrivals: ArrivalSpec::Burst {
            calm_rate: 2.0,
            burst_rate: 80.0,
            calm_secs: 12.0,
            burst_secs: 4.0,
        },
        lengths: LengthProfile::fixed(256, 24),
        slo: SimDuration::from_secs(5),
        slo_per_output_token: SimDuration::ZERO,
        horizon_secs: 120.0,
    }
    .generate(&mut SimRng::seed(14));
    let offset = SimTime::from_secs(100);
    let base_len = w.requests.len() as u64;
    for (i, r) in bursty.requests.iter().enumerate() {
        let mut r = *r;
        r.arrival = offset + (r.arrival - SimTime::ZERO);
        r.id = flexpipe_workload::RequestId(base_len + i as u64);
        w.requests.push(r);
    }

    let report = run(w, 220.0, Box::new(FlexPipePolicy::new(flexpipe_cfg())), 13);
    // The CV shift must trigger at least one inflight refactor, and the
    // system must keep serving through it.
    assert!(report.refactors >= 1, "no refactor happened");
    assert!(
        report.completion_rate() > 0.9,
        "rate {}",
        report.completion_rate()
    );
    // Switchover pauses stay in the milliseconds per event.
    let per_refactor_pause = report.refactor_pause_secs / f64::from(report.refactors.max(1));
    assert!(per_refactor_pause < 0.25, "pause {per_refactor_pause}");
}

#[test]
fn flexpipe_beats_static_under_bursts() {
    // Heavy requests (4k prompt, 256 output tokens) at 28 req/s mean with
    // CV=5 bursts overwhelm a static single-replica deployment.
    let make = || {
        WorkloadSpec {
            arrivals: ArrivalSpec::GammaRenewal {
                rate: 28.0,
                cv: 5.0,
            },
            lengths: LengthProfile::fixed(4096, 256),
            slo: SimDuration::from_secs(8),
            slo_per_output_token: SimDuration::ZERO,
            horizon_secs: 180.0,
        }
        .generate(&mut SimRng::seed(21))
    };
    let mut cfg = flexpipe_cfg();
    cfg.granularity.mean_prompt_tokens = 4096.0;
    cfg.granularity.mean_output_tokens = 256.0;
    cfg.expected_rate = 28.0;
    let flex = run(make(), 180.0, Box::new(FlexPipePolicy::new(cfg)), 21);
    let stat = run(make(), 180.0, Box::new(StaticPipeline::new(2, 1)), 21);
    // FlexPipe may not complete literally everything mid-burst but must
    // dominate the static single-replica deployment on goodput.
    assert!(
        flex.summary.within_slo as f64 >= stat.summary.within_slo as f64 * 1.1,
        "flex {} vs static {}",
        flex.summary.within_slo,
        stat.summary.within_slo
    );
    // And it must have actually used elasticity.
    assert!(flex.spawns > 1 || flex.refactors > 0);
}

#[test]
fn flexpipe_decision_latency_is_fast() {
    // The paper claims < 5 ms decisions for 2-32 stage configurations;
    // our scoring pass over 4 levels must be far below that even in debug
    // builds.
    use std::sync::{Arc, Mutex};

    struct Instrumented {
        inner: FlexPipePolicy,
        sink: Arc<Mutex<Vec<f64>>>,
    }
    impl ControlPolicy for Instrumented {
        fn name(&self) -> &'static str {
            "FlexPipe"
        }
        fn init(&mut self, ctx: &mut flexpipe_serving::Ctx<'_>) {
            self.inner.init(ctx)
        }
        fn on_tick(&mut self, ctx: &mut flexpipe_serving::Ctx<'_>) {
            self.inner.on_tick(ctx);
            *self.sink.lock().unwrap() = self.inner.decision_secs.clone();
        }
    }

    let w = workload(2.0, 8.0, 60.0, 31);
    let sink = Arc::new(Mutex::new(Vec::new()));
    let policy = Instrumented {
        inner: FlexPipePolicy::new(flexpipe_cfg()),
        sink: sink.clone(),
    };
    let report = run(w, 60.0, Box::new(policy), 31);
    assert!(report.completed() > 0);
    let decisions = sink.lock().unwrap().clone();
    assert!(!decisions.is_empty());
    let max = decisions.iter().cloned().fold(0.0, f64::max);
    assert!(max < 0.005, "slowest decision {max}s");
}
