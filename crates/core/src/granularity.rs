//! Granularity adaptation — Eq. (4) and the Eq. (5) instance planner (§6.1).
//!
//! For every lattice level `g_k = (η_k, b_k)` a [`LevelProfile`] estimates
//! throughput `T_k`, latency `L_k` and the CV sweet-spot `ν_k`; Eq. (4)
//! scores levels as
//!
//! ```text
//! S_k = [α·T_k/T_max + (1−α)·L_min/L_k] · exp(−|ν_t − ν_k| / σ)
//! ```
//!
//! and Eq. (5) converts demand into a replica count through the effective
//! per-instance capacity `μ_k = T_k / (β1 + β2·η_k)`.
//!
//! The `ν_k` assignments follow the paper's §3.3 derivation `S ∝ √CV`:
//! the level with `base_stages` is optimal at CV = 1, so
//! `ν_k = (η_k / base_stages)²`.

use serde::{Deserialize, Serialize};

use flexpipe_cluster::LinkSpec;
use flexpipe_model::{CostModel, ModelGraph};
use flexpipe_partition::GranularityLattice;

/// Parameters of the Eq. (4)/(5) machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GranularityParams {
    /// Throughput/latency trade-off weight α of Eq. (4).
    pub alpha: f64,
    /// Adaptation sensitivity σ of Eq. (4).
    pub sigma: f64,
    /// Coordination overhead intercept β1 of Eq. (5).
    pub beta1: f64,
    /// Coordination overhead slope β2 of Eq. (5).
    pub beta2: f64,
    /// Stage count that is optimal at CV = 1 (anchors ν_k).
    pub base_stages: u32,
    /// Decode micro-batch size used for profile estimation.
    pub ubatch_size: u32,
    /// Prefill chunk tokens used for profile estimation.
    pub chunk_tokens: u32,
    /// Mean output tokens per request (profiling assumption).
    pub mean_output_tokens: f64,
    /// Mean prompt tokens per request (profiling assumption).
    pub mean_prompt_tokens: f64,
}

impl Default for GranularityParams {
    fn default() -> Self {
        GranularityParams {
            alpha: 0.5,
            sigma: 2.0,
            // Calibrated against realized engine throughput: contention
            // between prefill chunks and decode passes plus background
            // interference costs ~30-60% of the analytic bound.
            beta1: 1.2,
            beta2: 0.2,
            base_stages: 4,
            ubatch_size: 128,
            chunk_tokens: 1024,
            mean_output_tokens: 64.0,
            mean_prompt_tokens: 1024.0,
        }
    }
}

/// Estimated performance profile of one lattice level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelProfile {
    /// Stage count η_k.
    pub stages: u32,
    /// Estimated per-instance throughput T_k, requests/second.
    pub throughput: f64,
    /// Estimated request latency L_k, seconds.
    pub latency: f64,
    /// CV sweet spot ν_k.
    pub nu: f64,
    /// Effective per-instance capacity μ_k of Eq. (5), requests/second.
    pub mu: f64,
    /// Admission capacity at 80 GiB devices (informational).
    pub batch_cap: u32,
}

/// Builds level profiles from the lattice and cost model.
pub fn build_profiles(
    graph: &ModelGraph,
    cost: &CostModel,
    lattice: &GranularityLattice,
    links: &LinkSpec,
    params: &GranularityParams,
) -> Vec<LevelProfile> {
    let hop_setup = (links.network_latency_us + links.rdma_setup_us) / 1e6;
    // Plan against the memory realistically free under background tenants,
    // not the nameplate 80 GiB (§3.1: mean memory utilisation ~20-50%).
    let gpu_mem = 60u64 << 30;
    lattice
        .levels()
        .iter()
        .map(|level| {
            let eta = level.stages;
            // Decode-pass stage times for a ubatch_size micro-batch.
            let taus: Vec<f64> = level
                .ranges
                .iter()
                .map(|&r| {
                    cost.stage_compute(graph, r, u64::from(params.ubatch_size))
                        .as_secs_f64()
                })
                .collect();
            let tau_max = taus.iter().cloned().fold(0.0, f64::max);
            // Per-hop cost: block-tail activations for the micro-batch.
            let act = 2.0 * f64::from(graph.config().d_model) * f64::from(params.ubatch_size);
            let delta = hop_setup + act / links.network_bw;
            // One full pipe traversal = one token for every member.
            let cycle: f64 = taus.iter().sum::<f64>() + f64::from(eta.saturating_sub(1)) * delta;
            // Prefill traversal at the mean prompt length.
            let prefill: f64 = level
                .ranges
                .iter()
                .map(|&r| {
                    cost.stage_compute(graph, r, params.mean_prompt_tokens as u64)
                        .as_secs_f64()
                })
                .sum::<f64>()
                + f64::from(eta.saturating_sub(1)) * delta;
            let latency = prefill + params.mean_output_tokens * cycle;
            // Throughput: the bottleneck stage's busy time per request.
            // Prefill work flows in chunk-token passes; decode work flows
            // in micro-batch passes whose size is capped by the level's
            // admission capacity (Table 2's max batch — the reason coarse
            // stages cannot amortise the weight-read floor).
            let _ = tau_max;
            let batch_cap_level = level
                .ranges
                .iter()
                .map(|&r| cost.max_batch(graph, r, gpu_mem))
                .min()
                .unwrap_or(1)
                .max(1);
            let decode_batch = params.ubatch_size.min(batch_cap_level).max(1);
            let chunk = f64::from(params.chunk_tokens.max(1));
            let busy_per_req = level
                .ranges
                .iter()
                .map(|&r| {
                    let chunk_pass = cost
                        .stage_compute(graph, r, u64::from(params.chunk_tokens))
                        .as_secs_f64()
                        + delta;
                    let decode_pass = cost
                        .stage_compute(graph, r, u64::from(decode_batch))
                        .as_secs_f64()
                        + delta;
                    params.mean_prompt_tokens * chunk_pass / chunk
                        + params.mean_output_tokens * decode_pass / f64::from(decode_batch)
                })
                .fold(0.0, f64::max);
            // Autoregressive bound: at most `batch_cap` requests advance by
            // one token per pipeline cycle, so coarse levels with small
            // admission capacity cannot exceed cap/cycle regardless of how
            // idle their stages are (the Little's-law face of Table 2).
            let decode_cycle: f64 = level
                .ranges
                .iter()
                .map(|&r| {
                    cost.stage_compute(graph, r, u64::from(decode_batch))
                        .as_secs_f64()
                })
                .sum::<f64>()
                + f64::from(eta.saturating_sub(1)) * delta;
            let cycle_bound_per_req =
                params.mean_output_tokens * decode_cycle / f64::from(batch_cap_level);
            let throughput = 1.0 / busy_per_req.max(cycle_bound_per_req).max(1e-9);
            let mu = throughput / (params.beta1 + params.beta2 * f64::from(eta));
            let batch_cap = level
                .ranges
                .iter()
                .map(|&r| cost.max_batch(graph, r, gpu_mem))
                .min()
                .unwrap_or(0);
            let base = f64::from(params.base_stages.max(1));
            LevelProfile {
                stages: eta,
                throughput,
                latency,
                nu: (f64::from(eta) / base).powi(2),
                mu,
                batch_cap,
            }
        })
        .collect()
}

/// The Eq. (4) score of a level at current CV `nu_t`.
pub fn score(
    profile: &LevelProfile,
    profiles: &[LevelProfile],
    params: &GranularityParams,
    nu_t: f64,
) -> f64 {
    let t_max = profiles
        .iter()
        .map(|p| p.throughput)
        .fold(f64::MIN, f64::max);
    let l_min = profiles.iter().map(|p| p.latency).fold(f64::MAX, f64::min);
    let quality =
        params.alpha * profile.throughput / t_max + (1.0 - params.alpha) * l_min / profile.latency;
    let affinity = (-((nu_t - profile.nu).abs()) / params.sigma).exp();
    quality * affinity
}

/// Selects the optimal granularity `g*` for the current CV (Eq. 4 argmax).
pub fn select(
    profiles: &[LevelProfile],
    params: &GranularityParams,
    nu_t: f64,
) -> Option<LevelProfile> {
    profiles
        .iter()
        .max_by(|a, b| {
            score(a, profiles, params, nu_t)
                .partial_cmp(&score(b, profiles, params, nu_t))
                .unwrap()
                .then(b.stages.cmp(&a.stages))
        })
        .copied()
}

/// Eq. (5): instances needed to serve `demand_rate` at level `profile`.
pub fn instances_needed(profile: &LevelProfile, demand_rate: f64, headroom: f64) -> u32 {
    if profile.mu <= 0.0 {
        return 1;
    }
    ((demand_rate * headroom / profile.mu).ceil() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpipe_model::zoo;
    use flexpipe_partition::{PartitionParams, Partitioner};

    fn profiles() -> (Vec<LevelProfile>, GranularityParams) {
        let graph = zoo::opt_66b();
        let cost = CostModel::default();
        let partitioner = Partitioner::new(PartitionParams::default(), cost);
        let lattice =
            GranularityLattice::build(&partitioner, &graph, 32, &[2, 4, 8, 16, 32], &cost).unwrap();
        let params = GranularityParams::default();
        let p = build_profiles(&graph, &cost, &lattice, &LinkSpec::default(), &params);
        (p, params)
    }

    #[test]
    fn profiles_capture_granularity_tradeoff() {
        let (profiles, _) = profiles();
        assert_eq!(profiles.len(), 5);
        // Latency grows with stage count (hop + overhead accumulation)...
        let latencies: Vec<f64> = profiles.iter().map(|p| p.latency).collect();
        assert!(
            latencies.windows(2).all(|w| w[1] > w[0] * 0.95),
            "latency not increasing: {latencies:?}"
        );
        // ...while batch capacity grows (Table 2's max-batch column).
        let caps: Vec<u32> = profiles.iter().map(|p| p.batch_cap).collect();
        assert!(caps.windows(2).all(|w| w[1] > w[0]), "{caps:?}");
        // Throughput per instance rises with depth (smaller bottleneck).
        let tput: Vec<f64> = profiles.iter().map(|p| p.throughput).collect();
        assert!(tput.windows(2).all(|w| w[1] > w[0]), "{tput:?}");
    }

    #[test]
    fn selection_tracks_cv() {
        let (profiles, params) = profiles();
        // Stable traffic → coarse; bursty → fine (§6.1's core behaviour).
        let at = |cv: f64| select(&profiles, &params, cv).unwrap().stages;
        let stable = at(0.3);
        let medium = at(4.0);
        let bursty = at(20.0);
        assert!(stable <= 4, "stable chose {stable}");
        assert!(medium >= stable, "medium {medium} < stable {stable}");
        assert!(bursty >= 16, "bursty chose {bursty}");
    }

    #[test]
    fn score_peaks_at_matching_nu() {
        let (profiles, params) = profiles();
        let p8 = profiles.iter().find(|p| p.stages == 8).unwrap();
        let at_match = score(p8, &profiles, &params, p8.nu);
        let off = score(p8, &profiles, &params, p8.nu + 10.0);
        assert!(at_match > off);
    }

    #[test]
    fn instance_planner_scales_with_demand() {
        let (profiles, _) = profiles();
        let p = &profiles[1]; // 4 stages
        let low = instances_needed(p, p.mu * 0.5, 1.2);
        let high = instances_needed(p, p.mu * 3.0, 1.2);
        assert_eq!(low, 1);
        assert!(high >= 3, "high {high}");
        // Finer levels pay coordination overhead: μ grows slower than T.
        let fine = profiles.last().unwrap();
        assert!(fine.mu < fine.throughput);
    }
}
