//! KV-cache consistency during refactoring — Eq. (10) and §6.3.
//!
//! The protocol tracks cache validity at token granularity:
//! `C(t) = ∪_i KV_i(t) ⊗ M_valid` — the consistent cache is the union over
//! devices of their KV entries masked by per-token validity. During a
//! transition the *bulk* of the cache (tokens valid at migration start)
//! copies asynchronously while the old pipeline keeps serving; tokens
//! generated during that window form a small *delta* that syncs during the
//! switchover pause. That is why the pause is microseconds-to-milliseconds
//! (the paper's 9 ms recovery at CV=4) rather than proportional to total
//! cache size.

use serde::{Deserialize, Serialize};

use flexpipe_sim::SimDuration;

/// A per-request token validity bitmask (`M_valid` of Eq. 10).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidityMask {
    bits: Vec<u64>,
    len: u32,
}

impl ValidityMask {
    /// Creates a mask of `len` tokens, all invalid.
    pub fn new(len: u32) -> Self {
        ValidityMask {
            bits: vec![0; (len as usize).div_ceil(64)],
            len,
        }
    }

    /// Creates a mask with tokens `[0, valid)` valid.
    pub fn valid_prefix(len: u32, valid: u32) -> Self {
        let mut m = Self::new(len);
        for i in 0..valid.min(len) {
            m.set(i, true);
        }
        m
    }

    /// Token capacity of the mask.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the mask covers zero tokens.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets token `i`'s validity.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: u32, valid: bool) {
        assert!(i < self.len, "token {i} out of range {}", self.len);
        let (w, b) = ((i / 64) as usize, i % 64);
        if valid {
            self.bits[w] |= 1 << b;
        } else {
            self.bits[w] &= !(1 << b);
        }
    }

    /// Whether token `i` is valid.
    pub fn get(&self, i: u32) -> bool {
        if i >= self.len {
            return false;
        }
        let (w, b) = ((i / 64) as usize, i % 64);
        (self.bits[w] >> b) & 1 == 1
    }

    /// Number of valid tokens.
    pub fn count_valid(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Element-wise AND (the `⊗` of Eq. 10 against another mask).
    pub fn and(&self, other: &ValidityMask) -> ValidityMask {
        assert_eq!(self.len, other.len, "mask length mismatch");
        ValidityMask {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Element-wise OR (the union across devices in Eq. 10).
    pub fn or(&self, other: &ValidityMask) -> ValidityMask {
        assert_eq!(self.len, other.len, "mask length mismatch");
        ValidityMask {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Tokens valid in `self` but not in `other` (the delta needing sync).
    pub fn minus(&self, other: &ValidityMask) -> ValidityMask {
        assert_eq!(self.len, other.len, "mask length mismatch");
        ValidityMask {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & !b)
                .collect(),
            len: self.len,
        }
    }
}

/// The migration timing model: turns byte counts into (prepare, pause).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationModel {
    /// Transfer bandwidth for bulk and delta KV movement, bytes/s (RDMA
    /// path per §8).
    pub kv_bandwidth: f64,
    /// Per-transfer setup latency.
    pub setup: SimDuration,
    /// Gateway/routing metadata update during switchover.
    pub gateway_update: SimDuration,
    /// Decision + bookkeeping latency of the controller (paper: < 5 ms).
    pub decision: SimDuration,
}

impl Default for MigrationModel {
    fn default() -> Self {
        MigrationModel {
            kv_bandwidth: 12.5e9,
            setup: SimDuration::from_micros(175),
            gateway_update: SimDuration::from_micros(400),
            decision: SimDuration::from_millis(2),
        }
    }
}

/// Outcome of migration planning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationTiming {
    /// Background preparation: bulk KV copy + parameter fetches, overlapped
    /// with continued service on the old topology.
    pub prepare: SimDuration,
    /// Switchover pause: delta KV sync + gateway update.
    pub pause: SimDuration,
    /// Bytes moved in the bulk phase.
    pub bulk_bytes: u64,
    /// Bytes moved in the delta phase.
    pub delta_bytes: u64,
}

impl MigrationModel {
    /// Plans a migration.
    ///
    /// - `kv_bytes_per_token`: KV bytes per cached token that must change
    ///   device (from the lattice transition plan);
    /// - `cached_tokens`: tokens valid at migration start (bulk);
    /// - `token_rate`: tokens generated per second during preparation
    ///   (they become the delta);
    /// - `param_load`: the longest parameter fetch among new stages
    ///   (overlaps the bulk copy);
    /// - `parallelism`: concurrent device-pair transfers — §8's transfer
    ///   engine moves each stage's shard over its own NIC pair, so the
    ///   effective bandwidth scales with the number of moving stages.
    pub fn plan(
        &self,
        kv_bytes_per_token: u64,
        cached_tokens: u64,
        token_rate: f64,
        param_load: SimDuration,
        parallelism: u32,
    ) -> MigrationTiming {
        let lanes = f64::from(parallelism.clamp(1, 16));
        let bulk_bytes = kv_bytes_per_token * cached_tokens;
        let bulk_time = self.setup
            + SimDuration::from_secs_f64(bulk_bytes as f64 / (self.kv_bandwidth * lanes));
        let prepare = self.decision + bulk_time.max(param_load);
        // Tokens generated while preparing form the delta.
        let delta_tokens = (token_rate * prepare.as_secs_f64()).ceil() as u64;
        let delta_bytes = kv_bytes_per_token * delta_tokens;
        let pause = self.gateway_update
            + if delta_bytes > 0 {
                self.setup
                    + SimDuration::from_secs_f64(delta_bytes as f64 / (self.kv_bandwidth * lanes))
            } else {
                SimDuration::ZERO
            };
        MigrationTiming {
            prepare,
            pause,
            bulk_bytes,
            delta_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_set_get_count() {
        let mut m = ValidityMask::new(130);
        assert_eq!(m.count_valid(), 0);
        m.set(0, true);
        m.set(64, true);
        m.set(129, true);
        assert_eq!(m.count_valid(), 3);
        assert!(m.get(64));
        assert!(!m.get(63));
        m.set(64, false);
        assert_eq!(m.count_valid(), 2);
        assert!(!m.get(200)); // out of range reads as invalid
    }

    #[test]
    fn prefix_constructor() {
        let m = ValidityMask::valid_prefix(100, 37);
        assert_eq!(m.count_valid(), 37);
        assert!(m.get(36));
        assert!(!m.get(37));
    }

    #[test]
    fn mask_algebra_laws() {
        let a = ValidityMask::valid_prefix(128, 80);
        let b = ValidityMask::valid_prefix(128, 50);
        // a ∧ b = b (b ⊆ a), a ∨ b = a.
        assert_eq!(a.and(&b), b);
        assert_eq!(a.or(&b), a);
        // delta = a \ b has 30 tokens.
        assert_eq!(a.minus(&b).count_valid(), 30);
        // Union of disjoint parts reconstructs the whole (Eq. 10 union).
        let delta = a.minus(&b);
        assert_eq!(b.or(&delta), a);
        // ⊗ with the full mask is identity.
        let full = ValidityMask::valid_prefix(128, 128);
        assert_eq!(a.and(&full), a);
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn mismatched_lengths_panic() {
        let a = ValidityMask::new(10);
        let b = ValidityMask::new(20);
        let _ = a.and(&b);
    }

    #[test]
    fn pause_is_milliseconds_while_bulk_is_not() {
        // OPT-66B scale: ~36 KB of KV per token per moved unit set, 40k
        // cached tokens (hundreds of requests), 2k tokens/s generation.
        let model = MigrationModel::default();
        let timing = model.plan(36_864, 40_000, 2_000.0, SimDuration::from_secs(2), 1);
        // Bulk ≈ 1.5 GB → prepare is seconds (overlapped with service).
        assert!(timing.prepare.as_secs_f64() >= 2.0);
        // Delta: ~2k tokens/s × prepare ≈ few thousand tokens → pause well
        // under 50 ms; the service-visible interruption is tiny.
        assert!(
            timing.pause.as_millis_f64() < 50.0,
            "pause {}",
            timing.pause
        );
        assert!(timing.pause.as_millis_f64() >= 0.4);
        // The delta is a small fraction of the bulk (2 s of generation vs
        // the full cache).
        assert!(timing.delta_bytes < timing.bulk_bytes / 5);
    }

    #[test]
    fn no_kv_movement_means_minimal_pause() {
        let model = MigrationModel::default();
        let timing = model.plan(0, 100_000, 5_000.0, SimDuration::from_millis(500), 4);
        assert_eq!(timing.bulk_bytes, 0);
        assert_eq!(timing.delta_bytes, 0);
        assert_eq!(timing.pause, model.gateway_update);
        // Prepare still covers the parameter load.
        assert!(timing.prepare >= SimDuration::from_millis(500));
    }

    #[test]
    fn parallel_lanes_shrink_bulk_time() {
        let model = MigrationModel::default();
        let serial = model.plan(1 << 20, 100_000, 0.0, SimDuration::ZERO, 1);
        let wide = model.plan(1 << 20, 100_000, 0.0, SimDuration::ZERO, 8);
        assert!(serial.prepare.as_secs_f64() / wide.prepare.as_secs_f64() > 6.0);
        // Lane count clamps at 16.
        let insane = model.plan(1 << 20, 100_000, 0.0, SimDuration::ZERO, 1000);
        let cap = model.plan(1 << 20, 100_000, 0.0, SimDuration::ZERO, 16);
        assert_eq!(insane.prepare, cap.prepare);
    }

    #[test]
    fn param_load_overlaps_bulk_copy() {
        let model = MigrationModel::default();
        let slow_load = model.plan(1000, 1000, 0.0, SimDuration::from_secs(10), 1);
        let fast_load = model.plan(1000, 1000, 0.0, SimDuration::from_millis(1), 1);
        assert!(slow_load.prepare > fast_load.prepare);
        // With a dominant bulk copy the load hides inside it.
        let big_bulk = model.plan(1 << 20, 100_000, 0.0, SimDuration::from_millis(1), 1);
        assert!(big_bulk.prepare.as_secs_f64() > 5.0);
    }
}
