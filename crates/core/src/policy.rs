//! The FlexPipe control policy — Algorithm 1 of §6 wired end to end.
//!
//! Every control interval the policy:
//!
//! 1. reads the arrival monitor (λ_t, ν_t, ∂λ/∂t) and queue state;
//! 2. scores every lattice level with Eq. (4) and picks `g*`;
//! 3. refactors serving instances toward `g*` when the score improvement
//!    beats the hysteresis margin and the per-instance dwell has elapsed —
//!    placement through the HRG + Eq. (6)–(9) optimizer, timing through the
//!    Eq. (10) consistency/migration model;
//! 4. sizes the replica set with Eq. (5), spawning at the Eq. (11)
//!    burst-aware granularity (checked against the Eq. (12) SLO
//!    constraint) and retiring patiently under sustained low demand.
//!
//! Only 30% of the historical peak GPU count is pinned always-on (§9.6);
//! everything else flows through the elastic tier with warm-start affinity.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use flexpipe_cluster::GpuId;
use flexpipe_serving::{
    ActionError, ControlPolicy, CrippledInstance, Ctx, DisruptionNotice, EngineMode, InstanceId,
    InstanceSnapshot, InstanceState, Placement, RefactorPlan, StageAssign,
};
use flexpipe_sim::{SimDuration, SimTime};

use crate::allocation::{AllocationOptimizer, AllocationParams, StageNeed};
use crate::consistency::MigrationModel;
use crate::granularity::{
    build_profiles, instances_needed, score, select, GranularityParams, LevelProfile,
};
use crate::hrg::{Hrg, HrgParams};
use crate::scaling::{scaling_granularity, slo_feasible, ScalingParams};

/// FlexPipe's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlexPipeConfig {
    /// Eq. (4)/(5) parameters.
    pub granularity: GranularityParams,
    /// Eq. (11)/(12) parameters.
    pub scaling: ScalingParams,
    /// Eq. (6)–(9) parameters.
    pub allocation: AllocationParams,
    /// HRG / Eq. (13) parameters.
    pub hrg: HrgParams,
    /// Eq. (10) migration timing model.
    pub migration: MigrationModel,
    /// Demand headroom when sizing replicas.
    pub headroom: f64,
    /// Refactor hysteresis: `score(g*) > hysteresis × score(current)`.
    pub hysteresis: f64,
    /// Minimum time between refactors of one instance.
    pub min_dwell: SimDuration,
    /// Control ticks of sustained low demand before scaling in.
    pub scale_down_patience: u32,
    /// Fraction of `peak_gpus` pinned always-on (0.30 in §9.6).
    pub always_on_fraction: f64,
    /// Historical peak GPU count of this service.
    pub peak_gpus: u32,
    /// Historical mean request rate — the same offline knowledge the
    /// static baselines receive; sizes the initial standing fleet.
    pub expected_rate: f64,
    /// Burst anticipation: ν_eff = ν_t + boost·max(0, ∂λ/∂t)/λ.
    pub gradient_boost: f64,
    /// Consecutive ticks the Eq. (4) argmax must agree before a refactor
    /// fires (debounces monitor noise around level boundaries).
    pub confirm_ticks: u32,
    /// Monitor warmup: no refactor decisions before this much simulated
    /// time (the CV estimator reads 0 on an empty window).
    pub warmup: SimDuration,
    /// Background-interference coefficient (mirrors the engine config).
    pub interference_coeff: f64,
    /// Hard cap on replicas.
    pub max_replicas: u32,
    /// Floor on the desired replica count. The default (1) preserves the
    /// sizing rule exactly; pinned-fleet configurations (`fleet trace
    /// profile`, scaling benchmarks) raise it to `max_replicas` so the
    /// standing fleet stays calm — `live == desired` — even when the
    /// live monitor correctly reads demand as near zero.
    pub min_replicas: u32,
    /// Deploy the initial standing fleet at this lattice level instead
    /// of the CV=1 argmax. `None` (the default) keeps the Eq. (4) sweet
    /// spot; profiling configurations pin a deliberately off-target
    /// level so every calm tick exercises the full refactor pass.
    pub initial_stages: Option<u32>,
}

impl Default for FlexPipeConfig {
    fn default() -> Self {
        FlexPipeConfig {
            granularity: GranularityParams::default(),
            scaling: ScalingParams::default(),
            allocation: AllocationParams::default(),
            hrg: HrgParams::default(),
            migration: MigrationModel::default(),
            headroom: 1.5,
            hysteresis: 1.25,
            min_dwell: SimDuration::from_secs(8),
            scale_down_patience: 10,
            always_on_fraction: 0.30,
            peak_gpus: 16,
            expected_rate: 20.0,
            gradient_boost: 2.0,
            confirm_ticks: 3,
            warmup: SimDuration::from_secs(20),
            interference_coeff: 0.6,
            max_replicas: 16,
            min_replicas: 1,
            initial_stages: None,
        }
    }
}

/// Warm-start fleet mirror: an id-keyed copy of every instance snapshot,
/// maintained from the engine's per-tick dirty-set deltas instead of a
/// from-scratch fleet walk. Alongside the map it keeps the two aggregates
/// Algorithm 1 consults every tick (live count, loading count) and the
/// off-target set the refactor pass iterates, so a calm tick — the common
/// case — costs O(|dirty|) instead of O(fleet).
///
/// Only the [`EngineMode::Indexed`] path maintains it; under
/// [`EngineMode::NaiveScan`] the policy re-snapshots the whole fleet each
/// tick, which is the retained reference the debug build cross-validates
/// against ([`FleetMirror::validate`]).
#[derive(Debug, Default)]
struct FleetMirror {
    instances: BTreeMap<InstanceId, InstanceSnapshot>,
    /// Replicas in a live state (Serving | Loading | Preparing | Paused).
    live: u32,
    /// Replicas still loading parameters.
    loading: u32,
    /// Serving instances whose depth differs from `target_stages`, in id
    /// order — exactly the set the Algorithm-1 refactor pass visits.
    off_target: BTreeSet<InstanceId>,
    /// The lattice level `off_target` is maintained against.
    target_stages: Option<u32>,
}

impl FleetMirror {
    fn is_live(state: InstanceState) -> bool {
        matches!(
            state,
            InstanceState::Serving
                | InstanceState::Loading
                | InstanceState::Preparing
                | InstanceState::Paused
        )
    }

    /// Folds one tick's dirty-set deltas into the mirror.
    fn apply(&mut self, deltas: &[(InstanceId, Option<InstanceSnapshot>)]) {
        for &(id, snap) in deltas {
            let old = match snap {
                Some(s) => self.instances.insert(id, s),
                None => self.instances.remove(&id),
            };
            if let Some(o) = old {
                if Self::is_live(o.state) {
                    self.live -= 1;
                }
                if o.state == InstanceState::Loading {
                    self.loading -= 1;
                }
            }
            self.off_target.remove(&id);
            if let Some(s) = snap {
                if Self::is_live(s.state) {
                    self.live += 1;
                }
                if s.state == InstanceState::Loading {
                    self.loading += 1;
                }
                if s.state == InstanceState::Serving
                    && self.target_stages.is_some_and(|t| t != s.stages)
                {
                    self.off_target.insert(id);
                }
            }
        }
    }

    /// Points the off-target set at a new lattice level. A full rebuild
    /// happens only when the Eq. (4) argmax actually moves; on the steady
    /// ticks in between, `apply` maintains membership incrementally.
    fn retarget(&mut self, stages: u32) {
        if self.target_stages == Some(stages) {
            return;
        }
        self.target_stages = Some(stages);
        self.off_target = self
            .instances
            .values()
            .filter(|i| i.state == InstanceState::Serving && i.stages != stages)
            .map(|i| i.id)
            .collect();
    }

    /// Debug-build cross-validation: the delta-maintained mirror must
    /// equal a from-scratch fleet snapshot, aggregates included.
    #[cfg(debug_assertions)]
    fn validate(&self, ctx: &Ctx<'_>) {
        let truth = ctx.instances();
        let mirrored: Vec<InstanceSnapshot> = self.instances.values().copied().collect();
        assert_eq!(mirrored, truth, "fleet mirror drifted from engine state");
        let live = truth.iter().filter(|i| Self::is_live(i.state)).count() as u32;
        let loading = truth
            .iter()
            .filter(|i| i.state == InstanceState::Loading)
            .count() as u32;
        assert_eq!(
            (self.live, self.loading),
            (live, loading),
            "fleet mirror counters drifted"
        );
        if let Some(t) = self.target_stages {
            let off: BTreeSet<InstanceId> = truth
                .iter()
                .filter(|i| i.state == InstanceState::Serving && i.stages != t)
                .map(|i| i.id)
                .collect();
            assert_eq!(self.off_target, off, "fleet mirror off-target set drifted");
        }
    }
}

/// Calm-tick plan cache: the memoized outcome of one refactor-pass walk,
/// reusable on later calm ticks for as long as every input that shaped
/// it is provably unchanged. The cache only arms when the walk took no
/// action at all (no admission hold, no refactor attempt) — an acting
/// walk perturbs state the next decision depends on — and it is dropped
/// the moment the engine's dirty set delivers any delta, because a delta
/// is exactly a change to the fleet view the walk read. Two inputs drift
/// even across delta-free ticks and are therefore re-checked, not
/// cached: simulated time (a dwell window may open — `next_dwell` bounds
/// validity) and ν_eff (the Eq. (4) scores move with the monitor — the
/// hysteresis comparison is re-evaluated per distinct *level*, O(#levels),
/// instead of per instance, O(fleet)). When every level still fails the
/// comparison, the whole O(|off_target|) walk is provably a no-op and is
/// skipped.
#[derive(Debug)]
struct PlanCache {
    /// Eq. (4) target level the cached walk ran against.
    target_stages: u32,
    /// Distinct current levels that reached the score comparison.
    score_levels: Vec<u32>,
    /// Earliest instant a dwell-blocked instance leaves its window
    /// ([`SimTime::MAX`] when none was blocked).
    next_dwell: SimTime,
}

/// The FlexPipe policy.
pub struct FlexPipePolicy {
    cfg: FlexPipeConfig,
    profiles: Vec<LevelProfile>,
    optimizer: AllocationOptimizer,
    hrg: Hrg,
    last_refactor: HashMap<InstanceId, SimTime>,
    holds: std::collections::HashSet<InstanceId>,
    mirror: FleetMirror,
    /// Calm-tick refactor-pass memo ([`EngineMode::Indexed`] only; the
    /// naive reference walks from scratch every tick).
    plan_cache: Option<PlanCache>,
    low_demand_ticks: u32,
    pending_target: Option<u32>,
    pending_ticks: u32,
    /// Decision latencies in seconds (wall-clock of the scoring pass),
    /// recorded to validate the paper's < 5 ms claim.
    pub decision_secs: Vec<f64>,
}

impl FlexPipePolicy {
    /// Creates the policy.
    pub fn new(cfg: FlexPipeConfig) -> Self {
        FlexPipePolicy {
            optimizer: AllocationOptimizer::new(cfg.allocation),
            hrg: Hrg::new(cfg.hrg),
            cfg,
            profiles: Vec::new(),
            last_refactor: HashMap::new(),
            holds: std::collections::HashSet::new(),
            mirror: FleetMirror::default(),
            plan_cache: None,
            low_demand_ticks: 0,
            pending_target: None,
            pending_ticks: 0,
            decision_secs: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FlexPipeConfig {
        &self.cfg
    }

    /// The level profiles (built during `init`).
    pub fn profiles(&self) -> &[LevelProfile] {
        &self.profiles
    }

    fn effective_nu(&self, rate: f64, cv: f64, grad: f64) -> f64 {
        // Anticipate building bursts (§6.3: intensity gradients enable
        // proactive adaptation before queues reflect the shift).
        let boost = if rate > 0.1 && grad > 0.0 {
            self.cfg.gradient_boost * grad / rate
        } else {
            0.0
        };
        cv + boost.min(4.0)
    }

    fn level_for_stages(&self, stages: u32) -> Option<LevelProfile> {
        self.profiles.iter().find(|p| p.stages == stages).copied()
    }

    /// Picks the lattice level closest to (and at least) `m` stages.
    fn nearest_level_at_least(&self, m: u32) -> Option<LevelProfile> {
        self.profiles
            .iter()
            .filter(|p| p.stages >= m)
            .min_by_key(|p| p.stages)
            .or_else(|| self.profiles.iter().max_by_key(|p| p.stages))
            .copied()
    }

    /// Devices no placement may touch: everything we already hold plus
    /// everything under an outstanding preemption notice.
    fn forbidden_gpus(&self, ctx: &Ctx<'_>) -> Vec<GpuId> {
        let mut forbidden: Vec<GpuId> = ctx.state.gpus_in_use().iter().copied().collect();
        forbidden.extend(ctx.state.doomed_gpus().iter().map(|&(g, _)| g));
        forbidden
    }

    fn stage_needs(&self, ctx: &Ctx<'_>, ranges: &[flexpipe_model::OpRange]) -> Vec<StageNeed> {
        ranges
            .iter()
            .map(|&r| StageNeed {
                range: r,
                mem_bytes: ctx.state.cost().stage_mem_bytes(ctx.state.graph(), r, 8),
            })
            .collect()
    }

    fn spawn_replica(
        &mut self,
        ctx: &mut Ctx<'_>,
        stages: u32,
        cv: f64,
        standing: bool,
    ) -> Result<InstanceId, ActionError> {
        let now = ctx.now();
        let ranges = ctx
            .state
            .lattice()
            .level(stages)
            .ok_or(ActionError::UnknownLevel(stages))?
            .ranges
            .clone();
        let needs = self.stage_needs(ctx, &ranges);
        let forbidden = self.forbidden_gpus(ctx);
        let assignment = self
            .hrg
            .place(
                ctx.state.cluster(),
                ctx.state.graph(),
                ctx.state.cost(),
                &self.optimizer,
                self.cfg.interference_coeff,
                &needs,
                &forbidden,
                cv,
                now,
            )
            .ok_or_else(|| ActionError::NoCapacity("HRG found no placement".into()))?;
        if standing {
            ctx.spawn_prewarmed(stages, Placement::Explicit(assignment.gpus))
        } else {
            ctx.spawn(stages, Placement::Explicit(assignment.gpus))
        }
    }

    fn try_refactor(
        &mut self,
        ctx: &mut Ctx<'_>,
        inst: &flexpipe_serving::InstanceSnapshot,
        target: &LevelProfile,
        rate: f64,
        cv: f64,
    ) {
        let now = ctx.now();
        let graph = ctx.state.graph();
        let plan = ctx
            .state
            .lattice()
            .plan_transition(graph, inst.stages, target.stages);

        // Fresh-device placement for transitions without a reused host.
        let fresh_ranges: Vec<flexpipe_model::OpRange> = plan
            .transitions
            .iter()
            .filter(|t| t.reuse_old_stage.is_none())
            .map(|t| plan_range(&plan, ctx, t.new_stage))
            .collect();
        let fresh_gpus = if fresh_ranges.is_empty() {
            Vec::new()
        } else {
            let needs = self.stage_needs(ctx, &fresh_ranges);
            let forbidden = self.forbidden_gpus(ctx);
            match self.hrg.place(
                ctx.state.cluster(),
                ctx.state.graph(),
                ctx.state.cost(),
                &self.optimizer,
                self.cfg.interference_coeff,
                &needs,
                &forbidden,
                cv,
                now,
            ) {
                Some(a) => a.gpus,
                None => return, // no capacity: stay on the current topology
            }
        };

        // Timing: parameter fetches (+ provisioning) overlap the bulk KV
        // copy in prepare; the delta sync bounds the pause (Eq. 10).
        let mut param_load = SimDuration::ZERO;
        let mut fresh_iter = fresh_gpus.iter();
        let new_ranges = ctx
            .state
            .lattice()
            .level(target.stages)
            .expect("level exists")
            .ranges
            .clone();
        let mut assignments = Vec::with_capacity(new_ranges.len());
        for t in &plan.transitions {
            match t.reuse_old_stage {
                Some(old) => assignments.push(StageAssign::Reuse { old_index: old }),
                None => {
                    let gpu = *fresh_iter.next().expect("one gpu per fresh stage");
                    let r = new_ranges[t.new_stage as usize];
                    let load =
                        ctx.state.load_duration(r, gpu) + ctx.state.provisioning_delay(gpu, now);
                    param_load = param_load.max(load);
                    assignments.push(StageAssign::Fresh { gpu });
                }
            }
        }

        // Cached tokens ≈ active requests × (prompt + half the output).
        let gp = &self.cfg.granularity;
        let cached_tokens = (f64::from(inst.active_requests)
            * (gp.mean_prompt_tokens + gp.mean_output_tokens / 2.0))
            as u64;
        let token_rate = rate * gp.mean_output_tokens;
        // Transfers run pairwise-parallel across the stages that receive
        // data (§8's hierarchical engine).
        let lanes = plan
            .transitions
            .iter()
            .filter(|t| t.kv_move_bytes_per_token > 0 || t.reuse_old_stage.is_none())
            .count()
            .max(1) as u32;
        let timing = self.cfg.migration.plan(
            plan.total_kv_bytes_per_token,
            cached_tokens,
            token_rate,
            param_load,
            lanes,
        );

        let refactor_plan = RefactorPlan {
            new_ranges,
            assignments,
            prepare: timing.prepare,
            pause: timing.pause,
        };
        if ctx.refactor(inst.id, refactor_plan).is_ok() {
            self.last_refactor.insert(inst.id, now);
        }
    }

    /// Inflight rescue (§6 under preemption): rebuild `id` at the same
    /// depth with every doomed/dead stage on a fresh HRG-placed device and
    /// every healthy stage reused in place. `cached_tokens` prices the KV
    /// that must move (0 after a revocation already destroyed it). Returns
    /// whether the refactor was accepted.
    fn refactor_onto_fresh(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: InstanceId,
        target_ranges: &[flexpipe_model::OpRange],
        bad: &dyn Fn(GpuId) -> bool,
        cached_tokens: u64,
    ) -> bool {
        let now = ctx.now();
        let surviving = ctx.state.stage_placement(id).unwrap_or_default();
        // Map each target range to a healthy survivor, or mark it fresh.
        let mut reuse: Vec<Option<u32>> = Vec::with_capacity(target_ranges.len());
        let mut fresh_ranges = Vec::new();
        for &r in target_ranges {
            match surviving.iter().position(|&(sr, sg)| sr == r && !bad(sg)) {
                Some(i) => reuse.push(Some(i as u32)),
                None => {
                    reuse.push(None);
                    fresh_ranges.push(r);
                }
            }
        }
        if fresh_ranges.is_empty() {
            return true; // nothing to move
        }
        let (rate, cv, _) = ctx.monitor();
        let needs = self.stage_needs(ctx, &fresh_ranges);
        let mut forbidden = self.forbidden_gpus(ctx);
        forbidden.extend(
            ctx.state
                .cluster()
                .topology()
                .gpus()
                .iter()
                .map(|g| g.id)
                .filter(|&g| bad(g)),
        );
        let Some(assignment) = self.hrg.place(
            ctx.state.cluster(),
            ctx.state.graph(),
            ctx.state.cost(),
            &self.optimizer,
            self.cfg.interference_coeff,
            &needs,
            &forbidden,
            cv,
            now,
        ) else {
            return false;
        };
        let mut fresh_iter = assignment.gpus.iter();
        let mut param_load = SimDuration::ZERO;
        let mut moved_kv_per_token: u64 = 0;
        let mut assignments = Vec::with_capacity(target_ranges.len());
        for (slot, &r) in reuse.iter().zip(target_ranges) {
            match slot {
                Some(old_index) => assignments.push(StageAssign::Reuse {
                    old_index: *old_index,
                }),
                None => {
                    let gpu = *fresh_iter.next().expect("one gpu per fresh range");
                    let load =
                        ctx.state.load_duration(r, gpu) + ctx.state.provisioning_delay(gpu, now);
                    param_load = param_load.max(load);
                    moved_kv_per_token += ctx.state.graph().range_kv_bytes_per_token(r);
                    assignments.push(StageAssign::Fresh { gpu });
                }
            }
        }
        let gp = &self.cfg.granularity;
        let token_rate = rate * gp.mean_output_tokens;
        let lanes = fresh_ranges.len() as u32;
        let timing = self.cfg.migration.plan(
            moved_kv_per_token,
            cached_tokens,
            token_rate,
            param_load,
            lanes,
        );
        let plan = RefactorPlan {
            new_ranges: target_ranges.to_vec(),
            assignments,
            prepare: timing.prepare,
            pause: timing.pause,
        };
        if ctx.refactor(id, plan).is_ok() {
            self.last_refactor.insert(id, now);
            true
        } else {
            false
        }
    }
}

/// Range of `new_stage` in the transition plan's target level.
fn plan_range(
    plan: &flexpipe_partition::TransitionPlan,
    ctx: &Ctx<'_>,
    new_stage: u32,
) -> flexpipe_model::OpRange {
    ctx.state
        .lattice()
        .level(plan.to_stages)
        .expect("level exists")
        .ranges[new_stage as usize]
}

impl ControlPolicy for FlexPipePolicy {
    fn name(&self) -> &'static str {
        "FlexPipe"
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.profiles = build_profiles(
            ctx.state.graph(),
            ctx.state.cost(),
            ctx.state.lattice(),
            &ctx.state.cluster().topology().spec().links,
            &self.cfg.granularity,
        );
        // Levels whose stages cannot hold a useful batch under realistic
        // free memory are not usable configurations (e.g. 2-stage OPT-66B
        // leaves < 1 GiB of KV room).
        self.profiles.retain(|p| p.batch_cap >= 8);
        assert!(
            !self.profiles.is_empty(),
            "lattice must provide at least one usable level"
        );

        // Pin 30% of historical peak as always-on (§9.6), chosen through
        // the HRG so the pinned set sits on quiet, memory-rich devices.
        let pinned_count =
            ((f64::from(self.cfg.peak_gpus) * self.cfg.always_on_fraction).ceil() as usize).max(1);
        let cap = ctx.state.cluster().gpu_mem_capacity();
        let mut candidates: Vec<GpuId> = ctx
            .state
            .cluster()
            .topology()
            .gpus()
            .iter()
            .map(|g| g.id)
            .collect();
        candidates.sort_by_key(|&g| {
            let load = ctx.state.cluster().load(g);
            (load.bg_mem + (load.bg_sm * cap as f64) as u64, g.0)
        });
        let pinned: Vec<GpuId> = candidates.into_iter().take(pinned_count).collect();
        ctx.set_always_on(pinned);

        // Initial deployment: the standing fleet for the historical mean
        // rate at the CV=1 sweet spot, prewarmed — this is the deployment
        // that exists before measurement starts, exactly like the static
        // baselines' fleets. Eq. (5) takes over from the live monitor.
        let initial = self
            .cfg
            .initial_stages
            .and_then(|s| self.level_for_stages(s))
            .or_else(|| select(&self.profiles, &self.cfg.granularity, 1.0))
            .expect("profiles non-empty");
        let standing = instances_needed(&initial, self.cfg.expected_rate, self.cfg.headroom)
            .min(self.cfg.max_replicas)
            .max(self.cfg.min_replicas)
            .max(1);
        for _ in 0..standing {
            if self.spawn_replica(ctx, initial.stages, 1.0, true).is_err() {
                break;
            }
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        let started = std::time::Instant::now();
        // Drain the engine's dirty set unconditionally so deltas never
        // accumulate across ticks; only the warm-start path consumes them.
        // The from-scratch reference (NaiveScan) re-snapshots the fleet
        // below, exactly as before the incremental solver existed.
        let deltas = ctx.take_dirty();
        let warm = ctx.mode() == EngineMode::Indexed;
        if warm {
            self.mirror.apply(&deltas);
        }
        // Any delta changes the fleet view the cached walk read; the
        // memoized plan is no longer evidence of anything.
        if !deltas.is_empty() || !warm {
            self.plan_cache = None;
        }
        let now = ctx.now();
        let (rate, cv, grad) = ctx.monitor();
        let queue = ctx.queue_len();
        let nu_eff = self.effective_nu(rate, cv, grad);

        let Some(target) = select(&self.profiles, &self.cfg.granularity, nu_eff) else {
            return;
        };

        // Debounce: a refactor only fires once the Eq. (4) argmax has been
        // stable for `confirm_ticks` consecutive ticks. Monitor noise near
        // a level boundary otherwise causes pathological oscillation.
        if self.pending_target == Some(target.stages) {
            self.pending_ticks += 1;
        } else {
            self.pending_target = Some(target.stages);
            self.pending_ticks = 1;
        }
        let confirmed =
            self.pending_ticks >= self.cfg.confirm_ticks && now >= SimTime::ZERO + self.cfg.warmup;

        // --- Replica accounting first: refactors are calm-time actions. ---
        // Warm path: the counters fall out of the delta fold above; no
        // fleet walk. Naive path: snapshot everything from scratch.
        let naive_view: Option<Vec<InstanceSnapshot>> = if warm {
            #[cfg(debug_assertions)]
            self.mirror.validate(ctx);
            None
        } else {
            Some(ctx.instances())
        };
        let (live, any_loading) = match &naive_view {
            Some(instances) => (
                instances
                    .iter()
                    .filter(|i| FleetMirror::is_live(i.state))
                    .count() as u32,
                instances.iter().any(|i| i.state == InstanceState::Loading),
            ),
            None => (self.mirror.live, self.mirror.loading > 0),
        };
        let drain_target_secs = 15.0;
        let pressure_active = queue > 64;
        let pressure = if pressure_active {
            queue as f64 / drain_target_secs
        } else {
            0.0
        };
        let effective_rate = rate + pressure;
        // Rate-adaptive replica cap: `max_replicas` reflects the sizing
        // rate the config was built for. When observed demand outruns that
        // sizing (the 200 QPS saturation bug: a cap sized for 20 QPS
        // starved a 200 QPS arrival stream down to ~5% SLO attainment),
        // scale the ceiling with the demand ratio instead of pinning the
        // fleet at the provisioning-time guess — bounded at 4x so a
        // transient spike cannot commandeer the whole cluster.
        let cap = if self.cfg.expected_rate > 0.0 && effective_rate > self.cfg.expected_rate {
            let ratio = (effective_rate / self.cfg.expected_rate).min(4.0);
            ((f64::from(self.cfg.max_replicas) * ratio).ceil() as u32).max(self.cfg.max_replicas)
        } else {
            self.cfg.max_replicas
        };
        let desired = instances_needed(&target, effective_rate, self.cfg.headroom)
            .min(cap)
            .max(self.cfg.min_replicas)
            .max(1);

        // Release holds that no longer serve a purpose (target moved, the
        // instance reached the target topology, or — critically — backlog
        // pressure demands every slot of capacity: consolidation waits,
        // service does not).
        let stale: Vec<InstanceId> = self
            .holds
            .iter()
            .copied()
            .filter(|id| {
                pressure_active || {
                    let stages = match &naive_view {
                        Some(instances) => instances.iter().find(|i| i.id == *id).map(|i| i.stages),
                        None => self.mirror.instances.get(id).map(|i| i.stages),
                    };
                    stages.is_none_or(|s| s == target.stages)
                }
            })
            .collect();
        for id in stale {
            ctx.set_admit_hold(id, false);
            self.holds.remove(&id);
        }

        // --- Refactor pass (Algorithm 1 lines 10-16). ---
        // Refactor only a calm, stable population: burst absorbers are
        // retired (not refactored) when demand subsides, capacity that is
        // still loading must land first, and backlog pressure means the
        // scaling path — not topology change — is the right tool.
        let calm = !pressure_active && live == desired && !any_loading;
        if confirmed && calm {
            // Calm-tick fast path: an armed plan cache proves the last walk
            // took no action against this exact fleet view (the dirty-set
            // drain above dropped it on any delta). Of the inputs that
            // still drift — time and ν_eff — time is bounded by the cached
            // dwell frontier, and ν_eff only enters through the per-level
            // hysteresis comparison, so re-evaluating that comparison for
            // the cached levels (O(#levels)) re-proves the entire
            // O(|off_target|) walk a no-op and skips it.
            let cached_skip = self.plan_cache.as_ref().is_some_and(|cache| {
                cache.target_stages == target.stages && now < cache.next_dwell && {
                    let s_target = score(&target, &self.profiles, &self.cfg.granularity, nu_eff);
                    cache.score_levels.iter().all(|&stages| {
                        self.level_for_stages(stages).is_some_and(|current| {
                            let s_current =
                                score(&current, &self.profiles, &self.cfg.granularity, nu_eff);
                            s_target <= self.cfg.hysteresis * s_current
                        })
                    })
                }
            });
            if !cached_skip {
                // The warm path walks only the maintained off-target set (in
                // id order, matching the naive snapshot's iteration order);
                // the naive path filters the full snapshot — same set, same
                // order. Retargeting happens here, at the set's only
                // consumer, so a flapping Eq. (4) argmax on non-calm ticks
                // never pays the rebuild; between consumptions `apply`
                // maintains membership against the last consumed level.
                let off_target: Vec<InstanceSnapshot> = match &naive_view {
                    Some(instances) => instances
                        .iter()
                        .filter(|i| i.state == InstanceState::Serving && i.stages != target.stages)
                        .copied()
                        .collect(),
                    None => {
                        self.mirror.retarget(target.stages);
                        self.mirror
                            .off_target
                            .iter()
                            .filter_map(|id| self.mirror.instances.get(id))
                            .copied()
                            .collect()
                    }
                };
                // Eq. (4) scores depend only on the lattice level, never on
                // the individual instance: score the target once and memoize
                // the current-level scores across the pass.
                let s_target = score(&target, &self.profiles, &self.cfg.granularity, nu_eff);
                let mut s_current_memo: HashMap<u32, f64> = HashMap::new();
                let mut acted = false;
                let mut next_dwell = SimTime::MAX;
                for inst in &off_target {
                    // A consolidation below the instance's live load cannot
                    // commit (the merged stages could not hold the admitted
                    // KV): hold admissions so the load drains toward the
                    // target capacity, then refactor on a later tick.
                    if target.batch_cap * 3 / 4 < inst.active_requests {
                        ctx.set_admit_hold(inst.id, true);
                        self.holds.insert(inst.id);
                        acted = true;
                        continue;
                    }
                    if let Some(&t) = self.last_refactor.get(&inst.id) {
                        if now.saturating_since(t) < self.cfg.min_dwell {
                            next_dwell = next_dwell.min(t + self.cfg.min_dwell);
                            continue;
                        }
                    }
                    let Some(current) = self.level_for_stages(inst.stages) else {
                        continue;
                    };
                    let s_current = *s_current_memo.entry(inst.stages).or_insert_with(|| {
                        score(&current, &self.profiles, &self.cfg.granularity, nu_eff)
                    });
                    if s_target > self.cfg.hysteresis * s_current {
                        self.try_refactor(ctx, inst, &target, rate, cv);
                        acted = true;
                    }
                }
                self.plan_cache = if warm && !acted {
                    let mut score_levels: Vec<u32> = s_current_memo.into_keys().collect();
                    score_levels.sort_unstable();
                    Some(PlanCache {
                        target_stages: target.stages,
                        score_levels,
                        next_dwell,
                    })
                } else {
                    None
                };
            }
        }

        if live < desired {
            // One cold spawn in flight at a time: spawning again before the
            // last instance loads only duplicates capacity that is already
            // on the way.
            if any_loading {
                return;
            }
            // Steady-state additions deploy at the Eq. (4) target
            // granularity. Under backlog pressure the Eq. (11) decision
            // kicks in: urgency (cv·q̂) pushes toward fine stages whose
            // parameter shards load quickly, and the Eq. (12) feasibility
            // ladder escalates fineness until the initialisation time fits
            // the drain deadline.
            let level = if !pressure_active {
                target
            } else {
                let g_max = self.profiles.iter().map(|p| p.stages).max().unwrap_or(1);
                let m = scaling_granularity(&self.cfg.scaling, g_max, cv, queue);
                let mut level = self.nearest_level_at_least(m).unwrap_or(target);
                let deadline = 20.0;
                loop {
                    let init_secs = ctx
                        .state
                        .lattice()
                        .level(level.stages)
                        .map(|l| {
                            l.ranges
                                .iter()
                                .map(|&r| {
                                    ctx.state
                                        .cost()
                                        .stage_load(ctx.state.graph(), r, 0.7e9)
                                        .as_secs_f64()
                                })
                                .fold(0.0, f64::max)
                        })
                        .unwrap_or(0.0);
                    if slo_feasible(deadline, init_secs, level.mu, 1, queue, 1)
                        || level.stages >= g_max
                    {
                        break;
                    }
                    match self
                        .profiles
                        .iter()
                        .filter(|p| p.stages > level.stages)
                        .min_by_key(|p| p.stages)
                    {
                        Some(finer) => level = *finer,
                        None => break,
                    }
                }
                level
            };
            // Fall back through coarser (fewer-GPU) levels when the chosen
            // one cannot be placed — a fragmented fleet may lack 16 free
            // devices while easily fitting 4.
            let mut candidates: Vec<u32> = self
                .profiles
                .iter()
                .map(|p| p.stages)
                .filter(|&s| s <= level.stages)
                .collect();
            candidates.sort_unstable_by(|a, b| b.cmp(a));
            candidates.insert(0, level.stages);
            candidates.dedup();
            let mut spawned = false;
            for stages in candidates {
                if self.spawn_replica(ctx, stages, cv, false).is_ok() {
                    spawned = true;
                    break;
                }
            }
            if !spawned {
                return;
            }
            self.low_demand_ticks = 0;
        } else if live > desired {
            self.low_demand_ticks += 1;
            if self.low_demand_ticks >= self.cfg.scale_down_patience {
                // Retire the least-loaded serving replicas.
                let mut serving: Vec<_> = ctx
                    .instances()
                    .into_iter()
                    .filter(|i| i.state == InstanceState::Serving)
                    .collect();
                serving.sort_by(|a, b| {
                    // Retire burst absorbers (off-target granularity) first,
                    // then the least-loaded replicas — "revert to coarse"
                    // happens by attrition, not by refactoring throwaway
                    // instances.
                    let a_off = a.stages != target.stages;
                    let b_off = b.stages != target.stages;
                    b_off
                        .cmp(&a_off)
                        .then(
                            (f64::from(a.active_requests) / f64::from(a.batch_cap.max(1)))
                                .partial_cmp(
                                    &(f64::from(b.active_requests) / f64::from(b.batch_cap.max(1))),
                                )
                                .unwrap(),
                        )
                        .then(a.id.cmp(&b.id))
                });
                let excess = (live - desired) as usize;
                for inst in serving.into_iter().take(excess) {
                    ctx.retire(inst.id);
                }
                self.low_demand_ticks = 0;
            }
        } else {
            self.low_demand_ticks = 0;
        }

        self.decision_secs.push(started.elapsed().as_secs_f64());
    }

    /// Proactive inflight migration: when the platform announces a
    /// preemption, move every stage sitting on a doomed device onto fresh
    /// capacity *during the grace window*, KV and all. If the migration
    /// beats the deadline the revocation hits idle devices and service
    /// never degrades — the static baselines, which ignore the notice,
    /// lose their in-flight work and cold-respawn instead.
    fn on_revoke_notice(&mut self, ctx: &mut Ctx<'_>, gpus: &[GpuId], _deadline: SimTime) {
        let doomed: std::collections::HashSet<GpuId> = gpus
            .iter()
            .copied()
            .chain(ctx.state.doomed_gpus().iter().map(|&(g, _)| g))
            .collect();
        let gp = &self.cfg.granularity;
        let per_req_tokens = gp.mean_prompt_tokens + gp.mean_output_tokens / 2.0;
        let instances = ctx.instances();
        for inst in instances {
            if inst.state != InstanceState::Serving {
                continue;
            }
            let Some(placement) = ctx.state.stage_placement(inst.id) else {
                continue;
            };
            if !placement.iter().any(|&(_, g)| doomed.contains(&g)) {
                continue;
            }
            let ranges: Vec<flexpipe_model::OpRange> = placement.iter().map(|&(r, _)| r).collect();
            let cached = (f64::from(inst.active_requests) * per_req_tokens) as u64;
            let bad = |g: GpuId| doomed.contains(&g);
            self.refactor_onto_fresh(ctx, inst.id, &ranges, &bad, cached);
        }
    }

    /// Reactive inflight recovery: rebuild each crippled instance at its
    /// original depth, reusing every surviving stage (parameters stay
    /// resident — no reload, no respawn) and landing the dead stages on
    /// fresh HRG-placed devices. Falls back to the cold respawn every
    /// other system pays only when the cluster cannot place the fresh
    /// stages.
    fn on_disruption(&mut self, ctx: &mut Ctx<'_>, notice: &DisruptionNotice) {
        for c in &notice.crippled {
            if !self.rebuild_crippled(ctx, c) {
                flexpipe_serving::cold_respawn_instance(ctx, c);
            }
        }
    }
}

impl FlexPipePolicy {
    fn rebuild_crippled(&mut self, ctx: &mut Ctx<'_>, c: &CrippledInstance) -> bool {
        let Some(level) = ctx.state.lattice().level(c.original_stages) else {
            return false;
        };
        let target_ranges = level.ranges.clone();
        // The revocation already destroyed the admitted KV (requests were
        // replayed), so nothing moves in bulk: the pause is metadata-only.
        let bad = |_: GpuId| false;
        self.refactor_onto_fresh(ctx, c.id, &target_ranges, &bad, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_match_paper_constants() {
        let cfg = FlexPipeConfig::default();
        assert!((cfg.always_on_fraction - 0.30).abs() < 1e-9);
        assert!(cfg.hysteresis > 1.0);
        assert!(cfg.granularity.alpha > 0.0 && cfg.granularity.alpha < 1.0);
    }

    #[test]
    fn effective_nu_boosts_on_positive_gradient() {
        let p = FlexPipePolicy::new(FlexPipeConfig::default());
        let flat = p.effective_nu(20.0, 2.0, 0.0);
        let rising = p.effective_nu(20.0, 2.0, 10.0);
        let falling = p.effective_nu(20.0, 2.0, -10.0);
        assert_eq!(flat, 2.0);
        assert!(rising > flat);
        assert_eq!(falling, flat);
        // Boost saturates.
        let extreme = p.effective_nu(1.0, 2.0, 1e9);
        assert!(extreme <= 6.0 + 1e-9);
    }
}
