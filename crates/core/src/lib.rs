//! FlexPipe itself: the paper's contribution, implemented as a control
//! policy over the `flexpipe-serving` substrate.
//!
//! - [`granularity`] — Eq. (4) granularity scoring with the
//!   `exp(−|ν_t − ν_k|/σ)` CV-affinity term and the Eq. (5) instance
//!   planner;
//! - [`allocation`] — the Eq. (6)–(9) fragmented-GPU assignment optimizer
//!   with the quadratic multiplexing penalty and anti-colocation rule;
//! - [`hrg`] — the Hierarchical Resource Graph (§7): scaling-event markers
//!   over server/rack/cluster plus the Eq. (13) warm-start affinity
//!   scheduler;
//! - [`consistency`] — the Eq. (10) token-level KV validity masks and the
//!   bulk/delta migration timing model that keeps switchover pauses in the
//!   milliseconds;
//! - [`scaling`] — Eq. (11) sigmoid scaling-granularity decision and the
//!   Eq. (12) SLO feasibility constraint;
//! - [`policy`] — [`policy::FlexPipePolicy`], Algorithm 1 tying it all
//!   together.

#![warn(missing_docs)]

pub mod allocation;
pub mod consistency;
pub mod granularity;
pub mod hrg;
pub mod policy;
pub mod scaling;

pub use allocation::{
    multiplexing_penalty, AllocationOptimizer, AllocationParams, Assignment, StageNeed,
};
pub use consistency::{MigrationModel, MigrationTiming, ValidityMask};
pub use granularity::{
    build_profiles, instances_needed, score, select, GranularityParams, LevelProfile,
};
pub use hrg::{Hrg, HrgParams};
pub use policy::{FlexPipeConfig, FlexPipePolicy};
pub use scaling::{min_feasible_expansion, scaling_granularity, slo_feasible, ScalingParams};
