//! Fragmented-GPU assignment — the Eq. (6)–(9) optimizer of §6.2.
//!
//! Maximises `Σ T_ij/m_j − γ(CV_i)·I(shared)` subject to memory capacity
//! (Eq. 7) and the balance constraint (Eq. 8), with the hard rule that two
//! stages of the same model never share a GPU. The multiplexing penalty
//! `γ(CV) = γ0·(1 + α·CV²)` (Eq. 9) makes the optimizer consolidate onto
//! busy GPUs under stable traffic and insist on isolation under bursty
//! traffic.
//!
//! Solved greedily with a local-search improvement pass — the candidate
//! set is small (stages × GPUs) and decisions must stay inside the paper's
//! < 5 ms budget.

use serde::{Deserialize, Serialize};

use flexpipe_cluster::{Cluster, GpuId};
use flexpipe_model::{CostModel, ModelGraph, OpRange};

/// Parameters of the assignment objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationParams {
    /// Base multiplexing penalty γ0 (Eq. 9).
    pub gamma0: f64,
    /// CV sensitivity α of the penalty (Eq. 9).
    pub alpha_mux: f64,
    /// Balance tolerance ε (Eq. 8): max relative throughput spread within
    /// a granularity group.
    pub epsilon: f64,
    /// Weight of memory headroom in the per-GPU score.
    pub headroom_weight: f64,
}

impl Default for AllocationParams {
    fn default() -> Self {
        AllocationParams {
            gamma0: 0.15,
            alpha_mux: 0.5,
            epsilon: 0.25,
            headroom_weight: 0.2,
        }
    }
}

/// The Eq. (9) multiplexing penalty.
pub fn multiplexing_penalty(params: &AllocationParams, cv: f64) -> f64 {
    params.gamma0 * (1.0 + params.alpha_mux * cv * cv)
}

/// One stage's placement requirement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageNeed {
    /// Operator range of the stage.
    pub range: OpRange,
    /// Device bytes it needs (params + reserve + planned KV).
    pub mem_bytes: u64,
}

/// Result of an assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Chosen GPU per stage, in stage order.
    pub gpus: Vec<GpuId>,
    /// Total objective value achieved.
    pub score: f64,
    /// Max/min stage throughput ratio − 1 (Eq. 8 slack).
    pub imbalance: f64,
}

/// The assignment optimizer.
#[derive(Debug, Clone)]
pub struct AllocationOptimizer {
    params: AllocationParams,
}

impl AllocationOptimizer {
    /// Creates an optimizer.
    pub fn new(params: AllocationParams) -> Self {
        AllocationOptimizer { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &AllocationParams {
        &self.params
    }

    /// Per-(stage, gpu) score: normalised throughput density minus the
    /// multiplexing penalty when the GPU already hosts other tenants.
    fn score_one(
        &self,
        cluster: &Cluster,
        interference_coeff: f64,
        need: &StageNeed,
        gpu: GpuId,
        cv: f64,
    ) -> Option<f64> {
        let free = cluster.free_mem(gpu);
        if free < need.mem_bytes {
            return None;
        }
        let load = cluster.load(gpu);
        // Throughput of this stage on this GPU degrades with background SM
        // contention (T_ij), normalised by memory consumed (the T_ij/m_j
        // density of Eq. 6).
        let slowdown = 1.0 + interference_coeff * load.bg_sm;
        let t_ij = 1.0 / slowdown;
        let density = t_ij / (need.mem_bytes as f64 / (1u64 << 30) as f64).max(0.05);
        let shared = load.bg_services > 0;
        let penalty = if shared {
            multiplexing_penalty(&self.params, cv)
        } else {
            0.0
        };
        // Mild preference for GPUs with more post-placement headroom.
        let headroom = (free - need.mem_bytes) as f64 / cluster.gpu_mem_capacity() as f64;
        Some(density - penalty + self.params.headroom_weight * headroom)
    }

    /// Assigns `needs` to GPUs from `candidates` under workload CV `cv`.
    ///
    /// `forbidden` GPUs (already hosting stages of this model) are never
    /// used — the §6.2 anti-colocation rule. Returns `None` when any stage
    /// cannot be placed.
    #[allow(clippy::too_many_arguments)]
    pub fn assign(
        &self,
        cluster: &Cluster,
        graph: &ModelGraph,
        cost: &CostModel,
        interference_coeff: f64,
        needs: &[StageNeed],
        candidates: &[GpuId],
        forbidden: &[GpuId],
        cv: f64,
    ) -> Option<Assignment> {
        self.assign_biased(
            cluster,
            graph,
            cost,
            interference_coeff,
            needs,
            candidates,
            forbidden,
            cv,
            &|_| 0.0,
        )
    }

    /// [`AllocationOptimizer::assign`] with an additive per-GPU bias.
    ///
    /// The Hierarchical Resource Graph composes its topology terms
    /// (contention markers, host-cache affinity) through `bias`, keeping
    /// the Eq. (6)-(9) objective and the HRG layer separable.
    #[allow(clippy::too_many_arguments)]
    pub fn assign_biased(
        &self,
        cluster: &Cluster,
        graph: &ModelGraph,
        cost: &CostModel,
        interference_coeff: f64,
        needs: &[StageNeed],
        candidates: &[GpuId],
        forbidden: &[GpuId],
        cv: f64,
        bias: &dyn Fn(GpuId) -> f64,
    ) -> Option<Assignment> {
        let usable: Vec<GpuId> = candidates
            .iter()
            .copied()
            .filter(|g| !forbidden.contains(g))
            .collect();
        if usable.len() < needs.len() {
            return None;
        }
        // Greedy: place the most memory-demanding stage first on its best
        // scoring GPU.
        let mut order: Vec<usize> = (0..needs.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(needs[i].mem_bytes));
        let mut chosen: Vec<Option<GpuId>> = vec![None; needs.len()];
        let mut taken: Vec<GpuId> = Vec::new();
        for &i in &order {
            let best = usable
                .iter()
                .copied()
                .filter(|g| !taken.contains(g))
                .filter_map(|g| {
                    self.score_one(cluster, interference_coeff, &needs[i], g, cv)
                        .map(|s| (s + bias(g), g))
                })
                .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(b.1.cmp(&a.1)));
            let (_, g) = best?;
            chosen[i] = Some(g);
            taken.push(g);
        }
        let mut gpus: Vec<GpuId> = chosen.into_iter().map(|c| c.expect("placed")).collect();

        // Local search: single-swap improvements between stage pairs.
        let score_of = |gpus: &[GpuId]| -> Option<f64> {
            let mut total = 0.0;
            for (need, &g) in needs.iter().zip(gpus) {
                total += self.score_one(cluster, interference_coeff, need, g, cv)? + bias(g);
            }
            Some(total)
        };
        let mut best_score = score_of(&gpus)?;
        let mut improved = true;
        while improved {
            improved = false;
            for a in 0..gpus.len() {
                for b in (a + 1)..gpus.len() {
                    gpus.swap(a, b);
                    match score_of(&gpus) {
                        Some(s) if s > best_score + 1e-12 => {
                            best_score = s;
                            improved = true;
                        }
                        _ => gpus.swap(a, b),
                    }
                }
            }
        }

        // Eq. (8): relative throughput spread across stages.
        let throughputs: Vec<f64> = needs
            .iter()
            .zip(&gpus)
            .map(|(need, &g)| {
                let load = cluster.load(g);
                let slowdown = 1.0 + interference_coeff * load.bg_sm;
                let compute = cost.stage_compute(graph, need.range, 1024).as_secs_f64() * slowdown;
                1.0 / compute
            })
            .collect();
        let max_t = throughputs.iter().cloned().fold(f64::MIN, f64::max);
        let min_t = throughputs.iter().cloned().fold(f64::MAX, f64::min);
        let imbalance = if min_t > 0.0 {
            max_t / min_t - 1.0
        } else {
            f64::INFINITY
        };

        Some(Assignment {
            gpus,
            score: best_score,
            imbalance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpipe_cluster::ClusterSpec;
    use flexpipe_model::{even_layer_ranges, zoo};

    fn setup() -> (Cluster, ModelGraph, CostModel, AllocationOptimizer) {
        (
            Cluster::new(ClusterSpec::paper_testbed()),
            zoo::llama2_7b(),
            CostModel::default(),
            AllocationOptimizer::new(AllocationParams::default()),
        )
    }

    fn needs_for(graph: &ModelGraph, cost: &CostModel, stages: u32) -> Vec<StageNeed> {
        even_layer_ranges(graph, stages)
            .into_iter()
            .map(|r| StageNeed {
                range: r,
                mem_bytes: cost.stage_mem_bytes(graph, r, 8),
            })
            .collect()
    }

    #[test]
    fn penalty_grows_quadratically_with_cv() {
        let p = AllocationParams::default();
        let g1 = multiplexing_penalty(&p, 1.0);
        let g4 = multiplexing_penalty(&p, 4.0);
        // (1 + 0.5·16) / (1 + 0.5·1) = 6.
        assert!((g4 / g1 - 6.0).abs() < 1e-9);
    }

    #[test]
    fn assigns_distinct_gpus() {
        let (cluster, graph, cost, opt) = setup();
        let needs = needs_for(&graph, &cost, 4);
        let candidates: Vec<GpuId> = cluster.topology().gpus().iter().map(|g| g.id).collect();
        let a = opt
            .assign(&cluster, &graph, &cost, 0.6, &needs, &candidates, &[], 1.0)
            .unwrap();
        let mut gpus = a.gpus.clone();
        gpus.sort();
        gpus.dedup();
        assert_eq!(gpus.len(), 4);
        assert!(a.imbalance < 0.25, "imbalance {}", a.imbalance);
    }

    #[test]
    fn forbidden_gpus_are_never_used() {
        let (cluster, graph, cost, opt) = setup();
        let needs = needs_for(&graph, &cost, 2);
        let candidates: Vec<GpuId> = cluster.topology().gpus().iter().map(|g| g.id).collect();
        let forbidden: Vec<GpuId> = (0..40).map(GpuId).collect();
        let a = opt
            .assign(
                &cluster,
                &graph,
                &cost,
                0.6,
                &needs,
                &candidates,
                &forbidden,
                1.0,
            )
            .unwrap();
        assert!(a.gpus.iter().all(|g| g.0 >= 40));
    }

    #[test]
    fn high_cv_prefers_isolated_gpus() {
        let (mut cluster, graph, cost, opt) = setup();
        // GPUs 0..40 are busy-but-roomy (shared); 40.. are empty.
        let cap = cluster.gpu_mem_capacity();
        for g in 0..40u32 {
            cluster.set_background(GpuId(g), cap / 10, 0.05, 2);
        }
        let needs = needs_for(&graph, &cost, 2);
        let candidates: Vec<GpuId> = cluster.topology().gpus().iter().map(|g| g.id).collect();
        let stable = opt
            .assign(&cluster, &graph, &cost, 0.6, &needs, &candidates, &[], 0.3)
            .unwrap();
        let bursty = opt
            .assign(&cluster, &graph, &cost, 0.6, &needs, &candidates, &[], 6.0)
            .unwrap();
        // Under bursty traffic every chosen GPU must be unshared.
        assert!(
            bursty
                .gpus
                .iter()
                .all(|&g| cluster.load(g).bg_services == 0),
            "bursty chose shared GPUs: {:?}",
            bursty.gpus
        );
        // Under stable traffic the penalty is small enough that shared,
        // otherwise-attractive GPUs may win; at minimum the score ordering
        // must hold.
        assert!(stable.score >= bursty.score - 1e9_f64.recip());
    }

    #[test]
    fn memory_pressure_fails_gracefully() {
        let (mut cluster, graph, cost, opt) = setup();
        let cap = cluster.gpu_mem_capacity();
        for info in cluster.topology().gpus().to_vec() {
            cluster.set_background(info.id, cap - (1 << 20), 0.9, 4);
        }
        let needs = needs_for(&graph, &cost, 2);
        let candidates: Vec<GpuId> = cluster.topology().gpus().iter().map(|g| g.id).collect();
        assert!(opt
            .assign(&cluster, &graph, &cost, 0.6, &needs, &candidates, &[], 1.0)
            .is_none());
    }

    #[test]
    fn avoids_compute_hot_gpus() {
        let (mut cluster, graph, cost, opt) = setup();
        // Make half the GPUs compute-hot but memory-free.
        for g in 0..41u32 {
            cluster.set_background(GpuId(g * 2), 0, 0.9, 0);
        }
        let needs = needs_for(&graph, &cost, 4);
        let candidates: Vec<GpuId> = cluster.topology().gpus().iter().map(|g| g.id).collect();
        let a = opt
            .assign(&cluster, &graph, &cost, 0.6, &needs, &candidates, &[], 1.0)
            .unwrap();
        for &g in &a.gpus {
            assert!(cluster.load(g).bg_sm < 0.5, "placed on hot gpu {g:?}");
        }
    }
}
