//! Adaptive pipeline scaling — Eq. (11) and Eq. (12) of §7.
//!
//! When traffic bursts, the system must decide *how fine* to scale: fine
//! (stage-level) scaling loads small parameter shards fast but adds
//! communication; coarse scaling is the reverse. Eq. (11) blends the
//! traffic CV and the normalised queue length through a sigmoid:
//!
//! ```text
//! m_j = ceil( G_max / (1 + β·e^{−γ(cv_j · q̂_j)}) )
//! ```
//!
//! pushing toward `G_max` (the finest granularity) exactly when both the
//! burstiness and the queue urgency are high. Eq. (12) then checks the SLO
//! feasibility of the chosen expansion.

use serde::{Deserialize, Serialize};

/// Parameters of the scaling-granularity decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingParams {
    /// Sigmoid offset β of Eq. (11).
    pub beta: f64,
    /// Sigmoid steepness γ of Eq. (11).
    pub gamma: f64,
    /// Queue normalisation constant `Q_max` for q̂ = min(q/Q_max, 1).
    pub queue_norm: f64,
}

impl Default for ScalingParams {
    fn default() -> Self {
        ScalingParams {
            beta: 40.0,
            gamma: 1.6,
            queue_norm: 100.0,
        }
    }
}

/// Eq. (11): the scaling granularity (stage count) for a workload with
/// coefficient of variation `cv` and queue length `queue`.
pub fn scaling_granularity(params: &ScalingParams, g_max: u32, cv: f64, queue: usize) -> u32 {
    let q_hat = (queue as f64 / params.queue_norm).min(1.0);
    let x = cv.max(0.0) * q_hat;
    let m = f64::from(g_max) / (1.0 + params.beta * (-params.gamma * x).exp());
    (m.ceil() as u32).clamp(1, g_max)
}

/// Eq. (12): whether `m` expanded stages with per-stage throughput
/// `stage_rate` can process `required` requests within the SLO deadline
/// `deadline_secs`, after paying `init_secs` of scaling initialisation.
///
/// The paper writes the constraint as
/// `(T_j − S_j)·Σ_k μ_jk / Q_j ≥ r_j`; with `r_j` being the requests to
/// clear (typically the queue itself plus projected arrivals) this reduces
/// to post-init capacity covering the requirement, which is the form
/// implemented here. `queue` is accepted for interface symmetry with the
/// paper and folded into `required` by callers.
pub fn slo_feasible(
    deadline_secs: f64,
    init_secs: f64,
    stage_rate: f64,
    m: u32,
    queue: usize,
    required: usize,
) -> bool {
    if deadline_secs <= init_secs {
        return false;
    }
    let capacity = (deadline_secs - init_secs) * stage_rate * f64::from(m);
    let _ = queue;
    capacity >= required as f64
}

/// The smallest `m ≤ g_max` satisfying Eq. (12), or `None`.
pub fn min_feasible_expansion(
    deadline_secs: f64,
    init_secs: f64,
    stage_rate: f64,
    g_max: u32,
    queue: usize,
    required: usize,
) -> Option<u32> {
    (1..=g_max).find(|&m| slo_feasible(deadline_secs, init_secs, stage_rate, m, queue, required))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_spans_coarse_to_fine() {
        let p = ScalingParams::default();
        // Calm: tiny granularity (coarse scaling).
        let calm = scaling_granularity(&p, 32, 0.5, 2);
        assert!(calm <= 2, "calm {calm}");
        // Full burst: approaches G_max.
        let burst = scaling_granularity(&p, 32, 6.0, 200);
        assert!(burst >= 30, "burst {burst}");
        // Monotone in cv at fixed queue.
        let mid_lo = scaling_granularity(&p, 32, 1.0, 60);
        let mid_hi = scaling_granularity(&p, 32, 4.0, 60);
        assert!(mid_hi >= mid_lo);
    }

    #[test]
    fn queue_urgency_matters_even_at_fixed_cv() {
        let p = ScalingParams::default();
        let idle = scaling_granularity(&p, 32, 4.0, 0);
        let packed = scaling_granularity(&p, 32, 4.0, 150);
        assert!(packed > idle);
    }

    #[test]
    fn bounds_are_respected() {
        let p = ScalingParams::default();
        for cv in [0.0, 1.0, 8.0, 100.0] {
            for q in [0usize, 10, 1000] {
                let m = scaling_granularity(&p, 16, cv, q);
                assert!((1..=16).contains(&m));
            }
        }
    }

    #[test]
    fn slo_feasibility() {
        // 5 s deadline, 1 s init, 2 req/s per stage.
        assert!(slo_feasible(5.0, 1.0, 2.0, 4, 10, 30)); // 4·2·4 = 32 ≥ 30
        assert!(!slo_feasible(5.0, 1.0, 2.0, 3, 10, 30)); // 24 < 30
        assert!(!slo_feasible(1.0, 2.0, 10.0, 8, 10, 1)); // init exceeds deadline
    }

    #[test]
    fn min_feasible_expansion_finds_threshold() {
        assert_eq!(min_feasible_expansion(5.0, 1.0, 2.0, 8, 10, 30), Some(4));
        assert_eq!(min_feasible_expansion(5.0, 1.0, 0.1, 8, 10, 1000), None);
    }
}
