//! The Hierarchical Resource Graph (§7): topology-aware resource
//! coordination across server / rack / cluster levels.
//!
//! The HRG annotates the physical hierarchy with *scaling-event markers*:
//! when a scaling operation lands on a server, concurrent operations should
//! route elsewhere — contending for the same PCIe links, NIC and storage
//! path is exactly what makes parallel scale-outs slow. Markers decay
//! exponentially, so the penalty is transient.
//!
//! It also implements the Eq. (13) affinity scheduler: servers that
//! recently hosted this model score higher (their host caches are warm),
//! weighted by temporal decay and currently-available GPUs — the mechanism
//! that turns cold starts into warm starts.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use flexpipe_cluster::{Cluster, GpuId, RackId, ServerId};
use flexpipe_model::{CostModel, ModelGraph};
use flexpipe_sim::SimTime;

use crate::allocation::{AllocationOptimizer, Assignment, StageNeed};

/// HRG parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HrgParams {
    /// Scaling-event decay time constant, seconds.
    pub event_decay_secs: f64,
    /// Score penalty per (decayed) scaling event on the same server.
    pub server_event_penalty: f64,
    /// Score penalty per (decayed) scaling event in the same rack.
    pub rack_event_penalty: f64,
    /// Eq. (13) temporal affinity weight `w_t`.
    pub w_temporal: f64,
    /// Eq. (13) GPU-availability weight `w_g`.
    pub w_gpus: f64,
    /// Eq. (13) temporal decay rate λ, 1/second.
    pub affinity_decay: f64,
}

impl Default for HrgParams {
    fn default() -> Self {
        HrgParams {
            event_decay_secs: 30.0,
            server_event_penalty: 0.8,
            rack_event_penalty: 0.2,
            w_temporal: 1.0,
            w_gpus: 0.05,
            affinity_decay: 1.0 / 120.0,
        }
    }
}

/// The HRG state: event markers and model-hosting history.
#[derive(Debug, Clone)]
pub struct Hrg {
    params: HrgParams,
    /// Decayed-event accumulators: (last update, value).
    server_events: HashMap<ServerId, (SimTime, f64)>,
    rack_events: HashMap<RackId, (SimTime, f64)>,
    /// Last time each server hosted this model (`H_i` of Eq. 13).
    hosted: HashMap<ServerId, SimTime>,
}

impl Hrg {
    /// Creates an empty HRG.
    pub fn new(params: HrgParams) -> Self {
        Hrg {
            params,
            server_events: HashMap::new(),
            rack_events: HashMap::new(),
            hosted: HashMap::new(),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &HrgParams {
        &self.params
    }

    fn decayed(&self, entry: Option<&(SimTime, f64)>, now: SimTime) -> f64 {
        match entry {
            Some(&(at, v)) => {
                let dt = now.saturating_since(at).as_secs_f64();
                v * (-dt / self.params.event_decay_secs).exp()
            }
            None => 0.0,
        }
    }

    /// Marks a scaling event on `server` (and its rack) at `now`.
    pub fn record_scaling(&mut self, cluster: &Cluster, server: ServerId, now: SimTime) {
        let rack = cluster.topology().spec().servers[server.0 as usize].rack;
        let s = self.decayed(self.server_events.get(&server), now) + 1.0;
        self.server_events.insert(server, (now, s));
        let r = self.decayed(self.rack_events.get(&rack), now) + 1.0;
        self.rack_events.insert(rack, (now, r));
    }

    /// Records that `server` hosts (or hosted) this model at `now`.
    pub fn record_hosting(&mut self, server: ServerId, now: SimTime) {
        self.hosted.insert(server, now);
    }

    /// Current contention level of `server` (decayed event mass, server +
    /// rack shares).
    pub fn contention(&self, cluster: &Cluster, server: ServerId, now: SimTime) -> f64 {
        let rack = cluster.topology().spec().servers[server.0 as usize].rack;
        self.params.server_event_penalty * self.decayed(self.server_events.get(&server), now)
            + self.params.rack_event_penalty * self.decayed(self.rack_events.get(&rack), now)
    }

    /// Eq. (13) affinity score of `server`.
    pub fn affinity(&self, cluster: &Cluster, server: ServerId, now: SimTime) -> f64 {
        let temporal = match self.hosted.get(&server) {
            Some(&t) => {
                let dt = now.saturating_since(t).as_secs_f64();
                self.params.w_temporal * (-self.params.affinity_decay * dt).exp()
            }
            None => 0.0,
        };
        // |g_s ∩ G_avail|: available (≥ 25% free) GPUs on the server.
        let cap = cluster.gpu_mem_capacity();
        let avail = cluster
            .topology()
            .gpus_on(server)
            .iter()
            .filter(|&&g| cluster.free_mem(g) >= cap / 4)
            .count() as f64;
        temporal + self.params.w_gpus * avail
    }

    /// Net per-GPU placement bias: affinity bonus minus contention penalty
    /// of the hosting server.
    pub fn bias(&self, cluster: &Cluster, gpu: GpuId, now: SimTime) -> f64 {
        let server = cluster.topology().gpu(gpu).server;
        self.affinity(cluster, server, now) - self.contention(cluster, server, now)
    }

    /// Topology-aware placement: runs the Eq. (6)–(9) optimizer with the
    /// HRG bias, then records scaling events on the chosen servers.
    #[allow(clippy::too_many_arguments)]
    pub fn place(
        &mut self,
        cluster: &Cluster,
        graph: &ModelGraph,
        cost: &CostModel,
        optimizer: &AllocationOptimizer,
        interference_coeff: f64,
        needs: &[StageNeed],
        forbidden: &[GpuId],
        cv: f64,
        now: SimTime,
    ) -> Option<Assignment> {
        let candidates: Vec<GpuId> = cluster.topology().gpus().iter().map(|g| g.id).collect();
        let assignment = optimizer.assign_biased(
            cluster,
            graph,
            cost,
            interference_coeff,
            needs,
            &candidates,
            forbidden,
            cv,
            &|g| self.bias(cluster, g, now),
        )?;
        for &g in &assignment.gpus {
            let server = cluster.topology().gpu(g).server;
            self.record_scaling(cluster, server, now);
            self.record_hosting(server, now);
        }
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::AllocationParams;
    use flexpipe_cluster::ClusterSpec;
    use flexpipe_model::{even_layer_ranges, zoo};

    fn setup() -> (Cluster, ModelGraph, CostModel, AllocationOptimizer, Hrg) {
        (
            Cluster::new(ClusterSpec::paper_testbed()),
            zoo::llama2_7b(),
            CostModel::default(),
            AllocationOptimizer::new(AllocationParams::default()),
            Hrg::new(HrgParams::default()),
        )
    }

    fn needs(graph: &ModelGraph, cost: &CostModel, stages: u32) -> Vec<StageNeed> {
        even_layer_ranges(graph, stages)
            .into_iter()
            .map(|r| StageNeed {
                range: r,
                mem_bytes: cost.stage_mem_bytes(graph, r, 8),
            })
            .collect()
    }

    #[test]
    fn scaling_events_decay() {
        let (cluster, _, _, _, mut hrg) = setup();
        let s = ServerId(3);
        hrg.record_scaling(&cluster, s, SimTime::from_secs(0));
        let fresh = hrg.contention(&cluster, s, SimTime::from_secs(0));
        let later = hrg.contention(&cluster, s, SimTime::from_secs(60));
        assert!(fresh > 0.5);
        assert!(later < fresh / 4.0, "fresh {fresh} later {later}");
    }

    #[test]
    fn rack_contention_spills_to_neighbors() {
        let (cluster, _, _, _, mut hrg) = setup();
        // Servers 0..6 share rack 0.
        hrg.record_scaling(&cluster, ServerId(0), SimTime::from_secs(0));
        let neighbor = hrg.contention(&cluster, ServerId(1), SimTime::from_secs(0));
        let far = hrg.contention(&cluster, ServerId(40), SimTime::from_secs(0));
        assert!(neighbor > 0.0);
        assert_eq!(far, 0.0);
    }

    #[test]
    fn affinity_prefers_recent_hosts() {
        let (cluster, _, _, _, mut hrg) = setup();
        hrg.record_hosting(ServerId(5), SimTime::from_secs(100));
        let warm = hrg.affinity(&cluster, ServerId(5), SimTime::from_secs(110));
        let cold = hrg.affinity(&cluster, ServerId(6), SimTime::from_secs(110));
        assert!(warm > cold);
        // Decay: much later the advantage shrinks.
        let later = hrg.affinity(&cluster, ServerId(5), SimTime::from_secs(1100));
        assert!(later < warm);
    }

    #[test]
    fn concurrent_scaleouts_spread_across_servers() {
        let (cluster, graph, cost, opt, mut hrg) = setup();
        let n = needs(&graph, &cost, 2);
        let now = SimTime::from_secs(10);
        let first = hrg
            .place(&cluster, &graph, &cost, &opt, 0.6, &n, &[], 1.0, now)
            .unwrap();
        let mut forbidden = first.gpus.clone();
        let second = hrg
            .place(&cluster, &graph, &cost, &opt, 0.6, &n, &forbidden, 1.0, now)
            .unwrap();
        forbidden.extend(second.gpus.clone());
        // The event markers must push the second scale-out off the first's
        // servers.
        let servers_of = |gpus: &[GpuId]| -> Vec<ServerId> {
            gpus.iter()
                .map(|&g| cluster.topology().gpu(g).server)
                .collect()
        };
        let s1 = servers_of(&first.gpus);
        let s2 = servers_of(&second.gpus);
        assert!(
            s1.iter().all(|s| !s2.contains(s)),
            "overlap between {s1:?} and {s2:?}"
        );
    }

    #[test]
    fn warm_server_attracts_respawn() {
        let (cluster, graph, cost, opt, mut hrg) = setup();
        let n = needs(&graph, &cost, 1);
        // Mark server 20 as a recent host.
        hrg.record_hosting(ServerId(20), SimTime::from_secs(50));
        let a = hrg
            .place(
                &cluster,
                &graph,
                &cost,
                &opt,
                0.6,
                &n,
                &[],
                1.0,
                SimTime::from_secs(55),
            )
            .unwrap();
        let server = cluster.topology().gpu(a.gpus[0]).server;
        assert_eq!(server, ServerId(20), "placed on {server:?}");
    }
}
