//! Integration tests for the schedule-equivalence checker: the stepped
//! driver's fidelity, the committed scenarios' confluence/divergence
//! contracts, and the pinned semantic fingerprint backstop.

use flexpipe_check::{
    check_equiv, explore, replay, semantic_fingerprint, CheckScenario, Entity, ExploreConfig,
    ScheduleSpec, PINNED_SEMANTIC_FINGERPRINT,
};
use flexpipe_obs::{TraceEvent, TraceRecord};
use flexpipe_serving::ENGINE_SEMANTICS_VERSION;

/// The all-zeros stepped schedule IS `run_observed`: same trace bytes,
/// same report bytes. This is the property that makes explored schedules
/// comparable against ordinary runs at all.
#[test]
fn stepped_canonical_schedule_matches_run_observed() {
    for sc in [
        CheckScenario::three_instance_disruption(),
        CheckScenario::independent_stages(),
    ] {
        let observed = sc.engine().run_observed();
        let mut stepped = sc.stepped();
        while stepped.step(0).is_some() {}
        let stepped_run = stepped.finish();
        assert_eq!(
            observed.trace.to_jsonl(),
            stepped_run.trace.to_jsonl(),
            "trace drift in {}",
            sc.name
        );
        assert_eq!(
            serde_json::to_string(&observed.report).unwrap(),
            serde_json::to_string(&stepped_run.report).unwrap(),
            "report drift in {}",
            sc.name
        );
    }
}

/// Exhaustively permute the three-instance scenario's same-instant
/// batches (admission vs refactor commit vs revocation at t=16): every
/// schedule must converge.
#[test]
fn three_instance_disruption_is_confluent() {
    let sc = CheckScenario::three_instance_disruption();
    assert!(!sc.expect_divergence);
    let out = explore(
        &sc,
        &ExploreConfig {
            max_schedules: 2048,
            prune: true,
        },
    );
    assert!(
        out.completed,
        "frontier must drain: {}",
        out.render(sc.name)
    );
    assert!(out.converged(), "{}", out.render(sc.name));
    assert!(
        out.schedules > 100,
        "expected a real tree, got {}",
        out.schedules
    );
    assert!(out.max_batch >= 3, "the t=16 batch has 3 events");
}

/// Independent per-instance stage work: exploration converges with and
/// without pruning, and the persistent-set filter actually fires.
#[test]
fn independent_stage_work_prunes_and_converges() {
    let sc = CheckScenario::independent_stages();
    let pruned = explore(
        &sc,
        &ExploreConfig {
            max_schedules: 2048,
            prune: true,
        },
    );
    assert!(
        pruned.completed && pruned.converged(),
        "{}",
        pruned.render(sc.name)
    );
    assert!(pruned.pruned > 0, "expected persistent-set pruning to fire");

    let full = explore(
        &sc,
        &ExploreConfig {
            max_schedules: 2048,
            prune: false,
        },
    );
    assert!(
        full.completed && full.converged(),
        "{}",
        full.render(sc.name)
    );
    assert!(
        full.schedules > pruned.schedules,
        "pruning must shrink the tree: {} vs {}",
        full.schedules,
        pruned.schedules
    );
}

/// The committed characterization of the one known non-commuting race:
/// a refactor's commit instant vs a revocation of its fresh device. The
/// explorer must find the divergence, anchor it on the instance, and the
/// emitted schedule must replay to the divergent trace.
#[test]
fn abort_revoke_overlap_diverges_on_the_instance() {
    let sc = CheckScenario::abort_revoke_overlap();
    assert!(sc.expect_divergence);
    let out = explore(
        &sc,
        &ExploreConfig {
            max_schedules: 256,
            prune: true,
        },
    );
    let cx = out.counterexample.expect("the race must be found");
    let d = cx.divergence.as_ref().expect("trace-level divergence");
    assert_eq!(d.entity, Entity::Instance(1));
    assert_eq!(d.at(), 16.0);
    // Canonical order cancels the refactor (revocation first); the
    // permuted schedule commits onto the doomed device.
    assert_eq!(
        d.left.as_ref().map(|r| &r.event),
        Some(&TraceEvent::RefactorAbort { instance: 1 })
    );
    assert!(matches!(
        d.right.as_ref().map(|r| &r.event),
        Some(TraceEvent::RefactorCommit { instance: 1, .. })
    ));
    assert!(cx.render().contains("abort-revoke-overlap"));

    // The counterexample is a replayable spec: driving the engine through
    // it reproduces the exact divergent trace.
    let divergent = replay(&sc, &cx.schedule);
    let canonical = replay(
        &sc,
        &ScheduleSpec {
            scenario: sc.name.to_string(),
            choices: vec![],
        },
    );
    let canon_records: Vec<TraceRecord> = canonical.trace.records().cloned().collect();
    let div_records: Vec<TraceRecord> = divergent.trace.records().cloned().collect();
    let rep = check_equiv(&canon_records, &div_records);
    let replayed = rep.divergence.expect("replay reproduces the divergence");
    assert_eq!(replayed.entity, d.entity);
    assert_eq!(replayed.index, d.index);
}

/// The fingerprint backstop: the probe scenario's canonical trace hashes
/// to the pinned value. If this fails and you changed engine behavior on
/// purpose, bump `ENGINE_SEMANTICS_VERSION` and re-pin
/// `PINNED_SEMANTIC_FINGERPRINT` in the same commit; if you did not
/// change behavior on purpose, you just found an unintended semantics
/// drift.
#[test]
fn probe_fingerprint_matches_the_pinned_value() {
    let run = CheckScenario::probe().engine().run_observed();
    let records: Vec<TraceRecord> = run.trace.records().cloned().collect();
    assert!(records.len() > 1000, "probe must exercise a real run");
    let fp = semantic_fingerprint(&records);
    assert_eq!(
        fp, PINNED_SEMANTIC_FINGERPRINT,
        "engine semantics drifted: probe fingerprint moved without a \
         matching re-pin (and, if behavior changed, an \
         ENGINE_SEMANTICS_VERSION bump)"
    );
    // The pin itself must reference the current semantics version, so a
    // version bump without a re-pin also fails loudly.
    assert!(
        PINNED_SEMANTIC_FINGERPRINT.starts_with(&format!("sem-v{ENGINE_SEMANTICS_VERSION}-")),
        "ENGINE_SEMANTICS_VERSION bumped without re-pinning \
         PINNED_SEMANTIC_FINGERPRINT"
    );
}

/// Equivalence holds between a run and itself, and the probe's semantic
/// fingerprint is insensitive to the recorder's seq numbering.
#[test]
fn probe_run_is_self_equivalent() {
    let sc = CheckScenario::probe();
    let a = sc.engine().run_observed();
    let b = sc.engine().run_observed();
    let ra: Vec<TraceRecord> = a.trace.records().cloned().collect();
    let rb: Vec<TraceRecord> = b.trace.records().cloned().collect();
    let rep = check_equiv(&ra, &rb);
    assert!(rep.equivalent(), "{}", rep.render("a", "b"));
    assert_eq!(semantic_fingerprint(&ra), semantic_fingerprint(&rb));
}
