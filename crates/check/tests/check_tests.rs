//! Integration tests for the schedule-equivalence checker: the stepped
//! driver's fidelity, the committed scenarios' confluence/divergence
//! contracts, and the pinned semantic fingerprint backstop.

use flexpipe_check::{
    check_equiv, explore, replay, semantic_fingerprint, CheckScenario, ExploreConfig, ScheduleSpec,
    PINNED_SEMANTIC_FINGERPRINT,
};
use flexpipe_obs::{TraceEvent, TraceRecord};
use flexpipe_serving::ENGINE_SEMANTICS_VERSION;

/// The all-zeros stepped schedule IS `run_observed`: same trace bytes,
/// same report bytes. This is the property that makes explored schedules
/// comparable against ordinary runs at all.
#[test]
fn stepped_canonical_schedule_matches_run_observed() {
    for sc in [
        CheckScenario::three_instance_disruption(),
        CheckScenario::independent_stages(),
    ] {
        let observed = sc.engine().run_observed();
        let mut stepped = sc.stepped();
        while stepped.step(0).is_some() {}
        let stepped_run = stepped.finish();
        assert_eq!(
            observed.trace.to_jsonl(),
            stepped_run.trace.to_jsonl(),
            "trace drift in {}",
            sc.name
        );
        assert_eq!(
            serde_json::to_string(&observed.report).unwrap(),
            serde_json::to_string(&stepped_run.report).unwrap(),
            "report drift in {}",
            sc.name
        );
    }
}

/// Exhaustively permute the three-instance scenario's same-instant
/// batches (admission vs refactor commit vs revocation at t=16): every
/// schedule must converge.
#[test]
fn three_instance_disruption_is_confluent() {
    let sc = CheckScenario::three_instance_disruption();
    assert!(!sc.expect_divergence);
    let out = explore(
        &sc,
        &ExploreConfig {
            max_schedules: 2048,
            prune: true,
        },
    );
    assert!(
        out.completed,
        "frontier must drain: {}",
        out.render(sc.name)
    );
    assert!(out.converged(), "{}", out.render(sc.name));
    assert!(
        out.schedules > 100,
        "expected a real tree, got {}",
        out.schedules
    );
    assert!(out.max_batch >= 3, "the t=16 batch has 3 events");
}

/// Independent per-instance stage work: exploration converges with and
/// without pruning, and the persistent-set filter actually fires.
#[test]
fn independent_stage_work_prunes_and_converges() {
    let sc = CheckScenario::independent_stages();
    let pruned = explore(
        &sc,
        &ExploreConfig {
            max_schedules: 2048,
            prune: true,
        },
    );
    assert!(
        pruned.completed && pruned.converged(),
        "{}",
        pruned.render(sc.name)
    );
    assert!(pruned.pruned > 0, "expected persistent-set pruning to fire");

    let full = explore(
        &sc,
        &ExploreConfig {
            max_schedules: 2048,
            prune: false,
        },
    );
    assert!(
        full.completed && full.converged(),
        "{}",
        full.render(sc.name)
    );
    assert!(
        full.schedules > pruned.schedules,
        "pruning must shrink the tree: {} vs {}",
        full.schedules,
        pruned.schedules
    );
}

/// The race the checker originally characterized — a refactor's commit
/// instant vs a revocation of its fresh device — is fixed: `on_pause_done`
/// now aborts deterministically when a `Fresh` target is doomed at the
/// commit instant, matching what `apply_revocation` does when it pops
/// first. Every interleaving must converge, the canonical trace must show
/// the abort (never a commit for the racing instance), and the explorer
/// must find zero counterexamples.
#[test]
fn abort_revoke_overlap_is_confluent() {
    let sc = CheckScenario::abort_revoke_overlap();
    assert!(!sc.expect_divergence);
    let out = explore(
        &sc,
        &ExploreConfig {
            max_schedules: 256,
            prune: true,
        },
    );
    assert!(
        out.completed,
        "frontier must drain: {}",
        out.render(sc.name)
    );
    assert!(out.converged(), "{}", out.render(sc.name));
    assert!(out.counterexample.is_none());

    // Whichever order the t=16 batch pops in, the refactor aborts and the
    // instance keeps its old single-stage topology.
    let canonical = replay(
        &sc,
        &ScheduleSpec {
            scenario: sc.name.to_string(),
            choices: vec![],
        },
    );
    let records: Vec<TraceRecord> = canonical.trace.records().cloned().collect();
    assert!(
        records
            .iter()
            .any(|r| r.event == TraceEvent::RefactorAbort { instance: 1 }),
        "canonical run must abort the doomed refactor"
    );
    assert!(
        !records
            .iter()
            .any(|r| matches!(r.event, TraceEvent::RefactorCommit { instance: 1, .. })),
        "the racing refactor must never commit onto the doomed device"
    );
}

/// Policy decisions as choice points: the deferred-decision scenario's
/// t=14 batch is three `PolicyAction` queue events (retire, admit-hold,
/// trace marker). The explorer must actually permute them — a real tree,
/// not a single path — and every order must converge.
#[test]
fn deferred_policy_decisions_are_confluent_choice_points() {
    let sc = CheckScenario::deferred_policy_decisions();
    assert!(!sc.expect_divergence);
    let out = explore(
        &sc,
        &ExploreConfig {
            max_schedules: 256,
            prune: true,
        },
    );
    assert!(
        out.completed,
        "frontier must drain: {}",
        out.render(sc.name)
    );
    assert!(out.converged(), "{}", out.render(sc.name));
    assert!(
        out.max_batch >= 3,
        "the three deferred decisions must form one same-instant batch, got {}",
        out.max_batch
    );
    assert!(
        out.schedules > 1,
        "deferred decisions must be explored as choice points"
    );

    // The canonical run carries the decisions' effects: the retire lands
    // and the marker is recorded.
    let canonical = replay(
        &sc,
        &ScheduleSpec {
            scenario: sc.name.to_string(),
            choices: vec![],
        },
    );
    let records: Vec<TraceRecord> = canonical.trace.records().cloned().collect();
    assert!(records
        .iter()
        .any(|r| r.event == TraceEvent::InstanceRetire { instance: 1 }));
    assert!(records.iter().any(|r| matches!(
        &r.event,
        TraceEvent::PolicyAction { action, instance: 0 } if action == "deferred-mark"
    )));
}

/// The fingerprint backstop: the probe scenario's canonical trace hashes
/// to the pinned value. If this fails and you changed engine behavior on
/// purpose, bump `ENGINE_SEMANTICS_VERSION` and re-pin
/// `PINNED_SEMANTIC_FINGERPRINT` in the same commit; if you did not
/// change behavior on purpose, you just found an unintended semantics
/// drift.
#[test]
fn probe_fingerprint_matches_the_pinned_value() {
    let run = CheckScenario::probe().engine().run_observed();
    let records: Vec<TraceRecord> = run.trace.records().cloned().collect();
    assert!(records.len() > 1000, "probe must exercise a real run");
    let fp = semantic_fingerprint(&records);
    assert_eq!(
        fp, PINNED_SEMANTIC_FINGERPRINT,
        "engine semantics drifted: probe fingerprint moved without a \
         matching re-pin (and, if behavior changed, an \
         ENGINE_SEMANTICS_VERSION bump)"
    );
    // The pin itself must reference the current semantics version, so a
    // version bump without a re-pin also fails loudly.
    assert!(
        PINNED_SEMANTIC_FINGERPRINT.starts_with(&format!("sem-v{ENGINE_SEMANTICS_VERSION}-")),
        "ENGINE_SEMANTICS_VERSION bumped without re-pinning \
         PINNED_SEMANTIC_FINGERPRINT"
    );
}

/// Equivalence holds between a run and itself, and the probe's semantic
/// fingerprint is insensitive to the recorder's seq numbering.
#[test]
fn probe_run_is_self_equivalent() {
    let sc = CheckScenario::probe();
    let a = sc.engine().run_observed();
    let b = sc.engine().run_observed();
    let ra: Vec<TraceRecord> = a.trace.records().cloned().collect();
    let rb: Vec<TraceRecord> = b.trace.records().cloned().collect();
    let rep = check_equiv(&ra, &rb);
    assert!(rep.equivalent(), "{}", rep.render("a", "b"));
    assert_eq!(semantic_fingerprint(&ra), semantic_fingerprint(&rb));
}
