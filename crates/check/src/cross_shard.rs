//! Cross-shard semantic equivalence: are `N` shard traces, merged,
//! request-equivalent to the 1-shard canonical trace?
//!
//! A sharded live run splits one request stream across `N` independent
//! engine partitions. The claim worth checking is that sharding is
//! invisible *to requests*: every request's lifecycle — arrival → admit
//! → prefill → complete/abort, with timestamps and generated-token
//! counts — is exactly what the unsharded fleet would have produced,
//! whenever the offered load never makes requests contend for the same
//! replica (under contention, batching composition is genuinely
//! different and no equivalence is claimed).
//!
//! Two quotients beyond [`crate::check_equiv`]'s commutation relation
//! are required, both forced by what sharding legitimately changes:
//!
//! - **Request-stream projection.** Instance, control-tick and
//!   disruption streams are per-engine facts: an `N`-shard run has `N`
//!   control-tick streams and renumbers instances per partition. Only
//!   [`crate::Entity::Request`] streams are compared.
//! - **Per-request-stream instance alpha-renaming.** Request events
//!   carry the serving instance in their payload, and instance ids are
//!   allocated per engine — shard 1's first replica and the unsharded
//!   fleet's third are the same capacity with different names. Within
//!   each request's stream, instance ids are renumbered in order of
//!   first appearance before comparing, so *which* replica served is
//!   quotiented out while re-binding mid-lifecycle (an abort replayed
//!   onto a different instance than the canonical run's) stays visible
//!   as a label mismatch only when the binding *structure* differs.

use std::collections::{BTreeMap, HashMap};

use flexpipe_obs::{TraceEvent, TraceRecord};

use crate::equiv::{EquivReport, SemanticDivergence};
use crate::model::{classify, Entity};

/// The serving-instance payload slot of a request-stream event, when
/// the variant has one.
fn instance_slot(event: &mut TraceEvent) -> Option<&mut u64> {
    match event {
        TraceEvent::RequestAdmit { instance, .. }
        | TraceEvent::RequestPrefillDone { instance, .. }
        | TraceEvent::RequestComplete { instance, .. }
        | TraceEvent::RequestAbort { instance, .. } => Some(instance),
        _ => None,
    }
}

/// Projects a trace onto its request streams (order-preserving), with
/// instance payloads alpha-renamed per stream by first appearance.
fn request_streams(records: &[TraceRecord]) -> BTreeMap<u64, Vec<TraceRecord>> {
    let mut out: BTreeMap<u64, Vec<TraceRecord>> = BTreeMap::new();
    for r in records {
        if let Entity::Request(id) = classify(&r.event) {
            out.entry(id).or_default().push(r.clone());
        }
    }
    for stream in out.values_mut() {
        let mut names: HashMap<u64, u64> = HashMap::new();
        for r in stream {
            if let Some(slot) = instance_slot(&mut r.event) {
                let next = names.len() as u64;
                *slot = *names.entry(*slot).or_insert(next);
            }
        }
    }
    out
}

/// Compares `N` per-shard traces, merged, against the 1-shard canonical
/// trace on request streams modulo per-stream instance renaming.
///
/// Each request is expected to live wholly on one shard; a request
/// split across shards concatenates its fragments in shard order, which
/// the per-stream comparison then reports as a divergence. The report's
/// record counts are request-stream records (post-projection).
pub fn check_cross_shard(shards: &[&[TraceRecord]], canonical: &[TraceRecord]) -> EquivReport {
    let mut merged: BTreeMap<u64, Vec<TraceRecord>> = BTreeMap::new();
    for shard in shards {
        for (req, stream) in request_streams(shard) {
            merged.entry(req).or_default().extend(stream);
        }
    }
    let canon = request_streams(canonical);

    let requests: std::collections::BTreeSet<u64> =
        merged.keys().chain(canon.keys()).copied().collect();
    let empty: Vec<TraceRecord> = Vec::new();
    let mut best: Option<SemanticDivergence> = None;
    for &req in &requests {
        let ls = merged.get(&req).unwrap_or(&empty);
        let rs = canon.get(&req).unwrap_or(&empty);
        for i in 0..ls.len().max(rs.len()) {
            let l = ls.get(i);
            let r = rs.get(i);
            if let (Some(l), Some(r)) = (l, r) {
                if l.at == r.at && l.event == r.event {
                    continue;
                }
            }
            let cand = SemanticDivergence {
                entity: Entity::Request(req),
                index: i,
                left: l.cloned(),
                right: r.cloned(),
            };
            let better = match &best {
                None => true,
                // Earliest virtual time wins; request order breaks ties
                // (requests are visited in ascending id order, so only
                // strictly-earlier displaces).
                Some(b) => cand.at() < b.at(),
            };
            if better {
                best = Some(cand);
            }
            break; // only each request's first divergence matters
        }
    }

    EquivReport {
        left_records: merged.values().map(Vec::len).sum(),
        right_records: canon.values().map(Vec::len).sum(),
        entities: requests.len(),
        divergence: best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, at: f64, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq, at, event }
    }

    /// One request's full lifecycle on `instance`, shifted to start at
    /// `t0`.
    fn lifecycle(req: u64, instance: u64, t0: f64) -> Vec<TraceRecord> {
        vec![
            rec(0, t0, TraceEvent::RequestArrival { req }),
            rec(1, t0, TraceEvent::RequestAdmit { req, instance }),
            rec(
                2,
                t0 + 0.5,
                TraceEvent::RequestPrefillDone { req, instance },
            ),
            rec(
                3,
                t0 + 1.0,
                TraceEvent::RequestComplete {
                    req,
                    instance,
                    generated: 4,
                },
            ),
        ]
    }

    #[test]
    fn sharded_streams_match_canonical_modulo_instance_names() {
        // Canonical 1-shard run: requests 0 and 1 on instances 3 and 7.
        let mut canonical = lifecycle(0, 3, 1.0);
        canonical.extend(lifecycle(1, 7, 2.0));
        // Instance streams exist only in the canonical run — projection
        // must drop them rather than flag them missing on the shards.
        canonical.push(rec(90, 0.0, TraceEvent::InstanceReady { instance: 3 }));
        canonical.push(rec(
            91,
            0.0,
            TraceEvent::ControlTick {
                queued: 0,
                instances: 2,
            },
        ));
        // 2-shard run: each shard numbers its instances from 1.
        let shard0 = lifecycle(0, 1, 1.0);
        let shard1 = lifecycle(1, 1, 2.0);
        let report = check_cross_shard(&[&shard0, &shard1], &canonical);
        assert!(report.equivalent(), "{}", report.render("shards", "canon"));
        assert_eq!(report.entities, 2);
        assert_eq!(report.left_records, 8);
        assert_eq!(report.right_records, 8, "non-request records must drop");
    }

    #[test]
    fn renaming_is_per_stream_not_global() {
        // Both requests served by the *same* shard instance; canonically
        // by two different instances. Per-request renaming maps all four
        // labels to 0 — which replica served is a shard-local fact.
        let mut canonical = lifecycle(0, 3, 1.0);
        canonical.extend(lifecycle(1, 7, 2.0));
        let mut shard0 = lifecycle(0, 5, 1.0);
        shard0.extend(lifecycle(1, 5, 2.0));
        assert!(check_cross_shard(&[&shard0], &canonical).equivalent());
    }

    #[test]
    fn rebinding_structure_stays_visible() {
        // Canonically request 0 is admitted and completes on one
        // instance; the sharded run completes it on a *different* one
        // (abort-free rebinding). Renaming keeps first-appearance
        // structure, so this diverges.
        let canonical = lifecycle(0, 3, 1.0);
        let mut shard0 = lifecycle(0, 1, 1.0);
        if let TraceEvent::RequestComplete { instance, .. } = &mut shard0[3].event {
            *instance = 2;
        }
        let d = check_cross_shard(&[&shard0], &canonical)
            .divergence
            .expect("rebinding must diverge");
        assert_eq!(d.entity, Entity::Request(0));
        assert_eq!(d.index, 3);
    }

    #[test]
    fn timing_and_payload_shifts_diverge() {
        let canonical = lifecycle(0, 3, 1.0);
        let mut late = lifecycle(0, 3, 1.0);
        late[3].at += 0.25;
        assert!(!check_cross_shard(&[&late], &canonical).equivalent());

        let mut short = lifecycle(0, 3, 1.0);
        if let TraceEvent::RequestComplete { generated, .. } = &mut short[3].event {
            *generated = 3;
        }
        assert!(!check_cross_shard(&[&short], &canonical).equivalent());
    }

    #[test]
    fn missing_and_split_requests_diverge() {
        let mut canonical = lifecycle(0, 3, 1.0);
        canonical.extend(lifecycle(1, 7, 2.0));
        // Request 1 never reached any shard.
        let shard0 = lifecycle(0, 1, 1.0);
        let report = check_cross_shard(&[&shard0], &canonical);
        let d = report.divergence.expect("missing request must diverge");
        assert_eq!(d.entity, Entity::Request(1));
        assert!(d.left.is_none());

        // Request 0 split across two shards: lifecycle fragments
        // concatenate in shard order and fail the stream comparison.
        let frag0 = lifecycle(0, 1, 1.0)[..2].to_vec();
        let frag1 = lifecycle(0, 1, 1.0)[2..].to_vec();
        let whole = lifecycle(0, 3, 1.0);
        // Sanity: fragments in order still reassemble equivalently...
        assert!(check_cross_shard(&[&frag0, &frag1], &whole).equivalent());
        // ...but shard order flips the concatenation, and the lifecycle
        // order violation is caught.
        assert!(!check_cross_shard(&[&frag1, &frag0], &whole).equivalent());
    }
}
