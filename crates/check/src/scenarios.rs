//! Committed checker scenarios: small, fully deterministic fleets whose
//! same-tick interleavings the explorer enumerates, plus the probe run
//! the semantic fingerprint is pinned against.

use std::sync::Arc;

use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript};
use flexpipe_cluster::{BackgroundProfile, ClusterSpec, TierConfig};
use flexpipe_model::{zoo, CostModel, ModelGraph};
use flexpipe_obs::{TraceEvent, TraceMode};
use flexpipe_partition::{GranularityLattice, PartitionParams, Partitioner};
use flexpipe_serving::{
    ControlPolicy, Ctx, Engine, EngineConfig, InstanceId, InstanceState, Placement, RefactorPlan,
    Scenario, StageAssign, SteppedEngine,
};
use flexpipe_sim::{SimDuration, SimTime};
use flexpipe_workload::{ArrivalSpec, LengthProfile, Request, RequestId, Workload, WorkloadSpec};

/// A deterministic named scenario the checker can replay at will.
pub struct CheckScenario {
    /// Stable name (CLI `--scenario`, counterexample specs).
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// Whether the scenario is a *characterization* of a known
    /// non-commuting race (the explorer is expected to find a divergence)
    /// rather than a confluence assertion.
    pub expect_divergence: bool,
    graph: Arc<ModelGraph>,
    lattice: Arc<GranularityLattice>,
    scenario: Scenario,
    policy: fn() -> Box<dyn ControlPolicy>,
}

impl CheckScenario {
    /// A fresh engine for this scenario with full tracing on. Every call
    /// returns bit-identical state (shared model artifacts, cloned
    /// scenario, freshly built policy), which is what makes schedule
    /// exploration sound.
    pub fn engine(&self) -> Engine {
        let mut e = Engine::new(
            self.scenario.clone(),
            self.graph.clone(),
            self.lattice.clone(),
            (self.policy)(),
        );
        e.set_trace(TraceMode::Full);
        e
    }

    /// A primed step-controllable driver for this scenario.
    pub fn stepped(&self) -> SteppedEngine {
        SteppedEngine::new(self.engine())
    }

    /// All committed scenarios.
    pub fn all() -> Vec<CheckScenario> {
        vec![
            CheckScenario::probe(),
            CheckScenario::three_instance_disruption(),
            CheckScenario::independent_stages(),
            CheckScenario::abort_revoke_overlap(),
            CheckScenario::deferred_policy_decisions(),
        ]
    }

    /// Looks a committed scenario up by name.
    pub fn named(name: &str) -> Option<CheckScenario> {
        CheckScenario::all().into_iter().find(|s| s.name == name)
    }

    /// The scenarios the explorer enumerates: everything but the probe,
    /// which exists to be fingerprinted, not permuted — it is far too
    /// large to explore, and its 1s control grid deliberately collides
    /// with the t=30 preemption (a sampling ambiguity the small scenarios
    /// engineer away).
    pub fn exploration_targets() -> Vec<CheckScenario> {
        CheckScenario::all()
            .into_iter()
            .filter(|s| s.name != "probe")
            .collect()
    }

    /// The fingerprint probe: a broad-vocabulary run (spawns, admission,
    /// refactor commit, graced preemption, crippled recovery, capacity
    /// return) whose canonical trace the pinned semantic fingerprint
    /// hashes. Not an exploration target — it exists to make semantics
    /// drift loud.
    pub fn probe() -> CheckScenario {
        let (graph, lattice) = llama_artifacts();
        let spec = WorkloadSpec {
            arrivals: ArrivalSpec::GammaRenewal { rate: 3.0, cv: 1.0 },
            lengths: LengthProfile::fixed(256, 16),
            slo: SimDuration::from_secs(5),
            slo_per_output_token: SimDuration::ZERO,
            horizon_secs: 55.0,
        };
        let workload = spec.generate(&mut flexpipe_sim::SimRng::seed(7));
        CheckScenario {
            name: "probe",
            about: "broad-vocabulary fingerprint probe (refactor + graced preempt + restore)",
            expect_divergence: false,
            graph,
            lattice,
            scenario: Scenario {
                config: EngineConfig::default(),
                cluster: ClusterSpec::paper_testbed(),
                background: BackgroundProfile::none(),
                tier: TierConfig::default(),
                cost: CostModel::default(),
                workload,
                disruptions: DisruptionScript {
                    name: "probe-chaos".into(),
                    events: vec![
                        DisruptionEvent {
                            at_secs: 30.0,
                            kind: Disruption::ServerPreempt {
                                server: 0,
                                grace_secs: 5.0,
                            },
                        },
                        DisruptionEvent {
                            at_secs: 45.0,
                            kind: Disruption::CapacityReturn {
                                gpus: vec![],
                                servers: vec![0],
                            },
                        },
                    ],
                },
                horizon: SimTime::from_secs(60),
                seed: 7,
            },
            policy: || {
                Box::new(ScriptedPolicy {
                    name: "check-probe",
                    replicas: 2,
                    stages: 2,
                    prewarmed: false,
                    refactor: Some(RefactorStep {
                        instance: 1,
                        to_stages: 4,
                        not_before: 20.0,
                        commit_at: 24.0,
                        prepare: 3.0,
                        fired: false,
                    }),
                })
            },
        }
    }

    /// The exhaustive confluence target: three single-stage instances; at
    /// t=16 an admission (`Arrival`), a refactor commit (`PauseDone` on
    /// instance 2) and a scripted revocation of an *unused* device
    /// (`Disruption`) all fire at the same virtual instant. Every
    /// interleaving must converge to an equivalent trace and a
    /// byte-identical report.
    ///
    /// The control interval is 7s so no tick lands on t=16: a `ControlTick`
    /// *samples* in-system counts, and sampling an instant whose population
    /// changes at that very instant is legitimately order-dependent —
    /// measurement ambiguity, not a semantics violation worth asserting on.
    pub fn three_instance_disruption() -> CheckScenario {
        let (graph, lattice) = llama_artifacts();
        CheckScenario {
            name: "three-instance-disruption",
            about: "admission vs refactor-commit vs revocation at one instant, 3 instances",
            expect_divergence: false,
            graph,
            lattice,
            scenario: Scenario {
                config: EngineConfig {
                    control_interval: SimDuration::from_secs(7),
                    ..EngineConfig::default()
                },
                cluster: ClusterSpec::paper_testbed(),
                background: BackgroundProfile::none(),
                tier: TierConfig::default(),
                cost: CostModel::default(),
                workload: Workload {
                    requests: vec![Request {
                        id: RequestId(0),
                        arrival: SimTime::from_secs(16),
                        prompt_tokens: 64,
                        output_tokens: 4,
                        slo: SimDuration::from_secs(10),
                    }],
                },
                disruptions: DisruptionScript {
                    name: "unused-gpu-fail".into(),
                    // GPU 81 is the last device of the testbed; FirstFit
                    // placement never reaches it in this scenario, so the
                    // revocation is pure capacity noise that must commute
                    // with the same-instant admission and commit.
                    events: vec![DisruptionEvent {
                        at_secs: 16.0,
                        kind: Disruption::GpuFail { gpu: 81 },
                    }],
                },
                horizon: SimTime::from_secs(30),
                seed: 3,
            },
            policy: || {
                Box::new(ScriptedPolicy {
                    name: "check-three-instance",
                    replicas: 3,
                    stages: 1,
                    prewarmed: true,
                    // Fires at the t=7 tick (never t=0, where spawn-order
                    // vs first-tick interleavings would make the firing
                    // tick itself schedule-dependent): prepare lands at 12,
                    // the pause commit at exactly 16.
                    refactor: Some(RefactorStep {
                        instance: 2,
                        to_stages: 2,
                        not_before: 1.0,
                        commit_at: 16.0,
                        prepare: 5.0,
                        fired: false,
                    }),
                })
            },
        }
    }

    /// Two instances each prefilling a same-instant request: the
    /// `StageArrive` pair is instance-scoped and independent, so
    /// persistent-set pruning may skip its permutations while an
    /// unpruned exploration must still converge.
    pub fn independent_stages() -> CheckScenario {
        let (graph, lattice) = llama_artifacts();
        CheckScenario {
            name: "independent-stages",
            about: "same-instant stage work on two instances (pruning demo)",
            expect_divergence: false,
            graph,
            lattice,
            scenario: Scenario {
                config: EngineConfig::default(),
                cluster: ClusterSpec::paper_testbed(),
                background: BackgroundProfile::none(),
                tier: TierConfig::default(),
                cost: CostModel::default(),
                workload: Workload {
                    requests: vec![
                        Request {
                            id: RequestId(0),
                            // Off the control-tick grid: the same-instant
                            // pair under test is the per-instance stage
                            // work, not a sampling tick.
                            arrival: SimTime::from_secs_f64(2.35),
                            prompt_tokens: 64,
                            output_tokens: 1,
                            slo: SimDuration::from_secs(10),
                        },
                        Request {
                            id: RequestId(1),
                            // Off the control-tick grid: the same-instant
                            // pair under test is the per-instance stage
                            // work, not a sampling tick.
                            arrival: SimTime::from_secs_f64(2.35),
                            prompt_tokens: 64,
                            output_tokens: 1,
                            slo: SimDuration::from_secs(10),
                        },
                    ],
                },
                disruptions: DisruptionScript::default(),
                horizon: SimTime::from_secs(10),
                seed: 5,
            },
            policy: || {
                Box::new(ScriptedPolicy {
                    name: "check-independent-stages",
                    replicas: 2,
                    stages: 1,
                    prewarmed: true,
                    refactor: None,
                })
            },
        }
    }

    /// The trickiest commutation case: a 1→2 refactor's commit point
    /// (`PauseDone`) lands at the same instant a revocation kills the
    /// refactor's **fresh** device. This used to be the committed
    /// characterization of a real non-commuting race — `PauseDone` first
    /// committed onto the doomed device and crippled the instance, while
    /// revocation first cancelled the plan cleanly. The engine now aborts
    /// deterministically in both orders (`on_pause_done` refuses to commit
    /// a `Fresh` stage onto a device that is revoked, past its preemption
    /// deadline, or named by a zero-grace revocation firing at the same
    /// instant), so the scenario is a confluence assertion: every
    /// interleaving must record `RefactorAbort` and resume the old
    /// single-stage topology unharmed.
    pub fn abort_revoke_overlap() -> CheckScenario {
        let (graph, lattice) = llama_artifacts();
        // A little early traffic exercises the serving path; fractional
        // arrivals and small outputs keep every request finished well
        // before the race so t=16 stays a two-event batch.
        let requests = (0..3)
            .map(|i| Request {
                id: RequestId(i),
                arrival: SimTime::from_secs_f64(0.65 + 0.4 * i as f64),
                prompt_tokens: 256,
                output_tokens: 16,
                slo: SimDuration::from_secs(30),
            })
            .collect();
        CheckScenario {
            name: "abort-revoke-overlap",
            about: "refactor abort racing a revocation of the fresh device, same instance",
            expect_divergence: false,
            graph,
            lattice,
            scenario: Scenario {
                // 7s control interval for the same reason as the
                // three-instance scenario: keep the sampling tick off the
                // t=16 batch so the divergence found is the abort race.
                config: EngineConfig {
                    control_interval: SimDuration::from_secs(7),
                    ..EngineConfig::default()
                },
                cluster: ClusterSpec::paper_testbed(),
                background: BackgroundProfile::none(),
                tier: TierConfig::default(),
                cost: CostModel::default(),
                workload: Workload { requests },
                disruptions: DisruptionScript {
                    name: "fresh-gpu-fail".into(),
                    // GPU 1 is the first device FirstFit hands the
                    // refactor's `Fresh` stage (gpu 0 holds the serving
                    // stage); killing it at exactly the commit instant is
                    // the race.
                    events: vec![DisruptionEvent {
                        at_secs: 16.0,
                        kind: Disruption::GpuFail { gpu: 1 },
                    }],
                },
                horizon: SimTime::from_secs(30),
                seed: 11,
            },
            policy: || {
                Box::new(ScriptedPolicy {
                    name: "check-abort-revoke",
                    replicas: 1,
                    stages: 1,
                    prewarmed: true,
                    // Fires at the t=7 tick; prepare ends at 12, the pause
                    // commit lands at 16 — exactly the revocation instant.
                    refactor: Some(RefactorStep {
                        instance: 1,
                        to_stages: 2,
                        not_before: 1.0,
                        commit_at: 16.0,
                        prepare: 5.0,
                        fired: false,
                    }),
                })
            },
        }
    }

    /// Policy decisions as choice points: at the t=14 tick the control
    /// plane defers three same-instant decisions through
    /// [`Ctx::defer_action`] — retire instance 1, admit-hold instance 2,
    /// and a trace marker on instance 0. Each pops as its own
    /// `PolicyAction` queue event, which the independence relation treats
    /// conservatively, so the explorer permutes the *decisions* (3! = 6
    /// orders), not just the engine mechanisms underneath them. The
    /// decisions touch disjoint instances and the gateway is empty at the
    /// batch, so every order must converge.
    pub fn deferred_policy_decisions() -> CheckScenario {
        let (graph, lattice) = llama_artifacts();
        // Early traffic exercises serving and drains long before t=14, so
        // the deferred-decision batch is exactly the three actions.
        let requests = (0..3)
            .map(|i| Request {
                id: RequestId(i),
                arrival: SimTime::from_secs_f64(0.65 + 0.4 * i as f64),
                prompt_tokens: 64,
                output_tokens: 8,
                slo: SimDuration::from_secs(30),
            })
            .collect();
        CheckScenario {
            name: "deferred-policy-decisions",
            about: "three same-instant deferred control decisions permuted as choice points",
            expect_divergence: false,
            graph,
            lattice,
            scenario: Scenario {
                config: EngineConfig {
                    control_interval: SimDuration::from_secs(7),
                    ..EngineConfig::default()
                },
                cluster: ClusterSpec::paper_testbed(),
                background: BackgroundProfile::none(),
                tier: TierConfig::default(),
                cost: CostModel::default(),
                workload: Workload { requests },
                disruptions: DisruptionScript::default(),
                horizon: SimTime::from_secs(30),
                seed: 13,
            },
            policy: || {
                Box::new(DeferredDecisionPolicy {
                    replicas: 3,
                    not_before: 13.0,
                    fired: false,
                })
            },
        }
    }
}

fn llama_artifacts() -> (Arc<ModelGraph>, Arc<GranularityLattice>) {
    let graph = zoo::llama2_7b();
    let cm = CostModel::default();
    let p = Partitioner::new(PartitionParams::default(), cm);
    let lattice = GranularityLattice::build(&p, &graph, 8, &[1, 2, 4, 8], &cm)
        .expect("llama2-7b lattice builds");
    (Arc::new(graph), Arc::new(lattice))
}

/// One scheduled refactor: fires at the first control tick at or after
/// `not_before` where the target instance is serving, with the pause
/// length solved so `PauseDone` lands exactly at `commit_at`.
struct RefactorStep {
    instance: u64,
    to_stages: u32,
    not_before: f64,
    commit_at: f64,
    prepare: f64,
    fired: bool,
}

/// The deterministic scripted policy all checker scenarios share: spawn
/// a fixed fleet at init, optionally fire one precisely-timed refactor,
/// cold-respawn on disruptions (the trait default).
struct ScriptedPolicy {
    name: &'static str,
    replicas: u32,
    stages: u32,
    prewarmed: bool,
    refactor: Option<RefactorStep>,
}

impl ControlPolicy for ScriptedPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        let all: Vec<_> = ctx
            .state
            .cluster()
            .topology()
            .gpus()
            .iter()
            .map(|g| g.id)
            .collect();
        ctx.set_always_on(all);
        for _ in 0..self.replicas {
            let spawned = if self.prewarmed {
                ctx.spawn_prewarmed(self.stages, Placement::FirstFit)
            } else {
                ctx.spawn(self.stages, Placement::FirstFit)
            };
            spawned.expect("spawn must succeed on an empty cluster");
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now().as_secs_f64();
        let Some(step) = self.refactor.as_mut() else {
            return;
        };
        if step.fired || now < step.not_before {
            return;
        }
        let insts = ctx.instances();
        let Some(inst) = insts.iter().find(|i| {
            i.id.0 == step.instance
                && i.state == InstanceState::Serving
                && i.stages != step.to_stages
        }) else {
            return;
        };
        let pause = step.commit_at - now - step.prepare;
        assert!(
            pause > 0.0,
            "scenario timing broke: tick {now} too late for commit at {}",
            step.commit_at
        );
        let lattice = ctx.state.lattice();
        let new_ranges = lattice
            .level(step.to_stages)
            .expect("lattice level exists")
            .ranges
            .clone();
        let in_use = ctx.state.gpus_in_use().clone();
        let mut fresh_pool: Vec<_> = ctx
            .state
            .cluster()
            .topology()
            .gpus()
            .iter()
            .map(|g| g.id)
            .filter(|g| !in_use.contains(g))
            .collect();
        let mut assignments = Vec::new();
        for i in 0..new_ranges.len() {
            if i < inst.stages as usize {
                assignments.push(StageAssign::Reuse {
                    old_index: i as u32,
                });
            } else {
                assignments.push(StageAssign::Fresh {
                    gpu: fresh_pool.remove(0),
                });
            }
        }
        let target = inst.id;
        ctx.refactor(
            target,
            RefactorPlan {
                new_ranges,
                assignments,
                prepare: SimDuration::from_secs_f64(step.prepare),
                pause: SimDuration::from_secs_f64(pause),
            },
        )
        .expect("scenario refactor accepted");
        ctx.trace(TraceEvent::PolicyAction {
            action: "check-refactor".into(),
            instance: target.0,
        });
        step.fired = true;
    }
}

/// A control plane whose decisions are themselves queue events: one tick
/// defers three actions through [`Ctx::defer_action`]; each pops back via
/// `on_action` at the same virtual instant, where the explorer can
/// permute them against each other.
struct DeferredDecisionPolicy {
    replicas: u32,
    not_before: f64,
    fired: bool,
}

impl ControlPolicy for DeferredDecisionPolicy {
    fn name(&self) -> &'static str {
        "check-deferred-decisions"
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        let all: Vec<_> = ctx
            .state
            .cluster()
            .topology()
            .gpus()
            .iter()
            .map(|g| g.id)
            .collect();
        ctx.set_always_on(all);
        for _ in 0..self.replicas {
            ctx.spawn_prewarmed(1, Placement::FirstFit)
                .expect("spawn must succeed on an empty cluster");
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        if self.fired || ctx.now().as_secs_f64() < self.not_before {
            return;
        }
        self.fired = true;
        ctx.defer_action(0);
        ctx.defer_action(1);
        ctx.defer_action(2);
    }

    fn on_action(&mut self, ctx: &mut Ctx<'_>, tag: u32) {
        match tag {
            0 => ctx.retire(InstanceId(1)),
            1 => ctx.set_admit_hold(InstanceId(2), true),
            _ => ctx.trace(TraceEvent::PolicyAction {
                action: "deferred-mark".into(),
                instance: 0,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_resolve_by_name() {
        for sc in CheckScenario::all() {
            let again = CheckScenario::named(sc.name).expect("resolvable");
            assert_eq!(again.name, sc.name);
            assert!(!sc.about.is_empty());
        }
        assert!(CheckScenario::named("nope").is_none());
    }

    #[test]
    fn scenario_runs_are_reproducible() {
        let sc = CheckScenario::three_instance_disruption();
        let a = sc.engine().run_observed();
        let b = sc.engine().run_observed();
        assert_eq!(a.trace.to_jsonl(), b.trace.to_jsonl());
        assert!(!a.trace.is_empty());
    }
}
