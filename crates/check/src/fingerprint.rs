//! The semantic-fingerprint backstop.
//!
//! [`flexpipe_serving::engine_fingerprint`] hashes the engine's *default
//! configuration*; a semantics change is supposed to bump
//! `ENGINE_SEMANTICS_VERSION` by hand, and a forgotten bump silently
//! replays stale campaign caches. [`semantic_fingerprint`] closes that
//! hole from the behavior side: it hashes the canonical per-entity
//! streams of an actual engine run, so *any* observable semantics change
//! — event added, payload changed, timing moved — changes the hash. The
//! committed probe scenario's fingerprint is pinned in a test; if it
//! changes while `ENGINE_SEMANTICS_VERSION` does not, the pinned test
//! fails loudly and names the contract being broken.

use flexpipe_obs::TraceRecord;
use flexpipe_serving::ENGINE_SEMANTICS_VERSION;

use crate::model::{normalize, project};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The pinned fingerprint of [`crate::scenarios::CheckScenario::probe`]'s
/// canonical run. Update this constant **and** bump
/// `ENGINE_SEMANTICS_VERSION` together when engine semantics deliberately
/// change; the pinned test fails on either half being forgotten.
pub const PINNED_SEMANTIC_FINGERPRINT: &str = "sem-v3-2ff9de76622328e4";

/// Hashes a canonical trace's per-entity projection into a stable
/// `sem-v{N}-{hash}` fingerprint.
///
/// The hash covers entity identity, stream lengths, virtual timestamps
/// (bit-exact) and full event payloads (canonical JSON), but *not* record
/// sequence numbers or global allocation labels (ubatch ids hash in
/// per-instance normalized form) — so it is invariant under exactly the
/// reorderings [`crate::check_equiv`] permits, and two semantically
/// equivalent schedules fingerprint identically.
pub fn semantic_fingerprint(records: &[TraceRecord]) -> String {
    let records = normalize(records);
    let proj = project(&records);
    let mut h = FNV_OFFSET;
    h = fnv(h, &(proj.len() as u64).to_le_bytes());
    for (entity, stream) in &proj {
        let label = format!("{entity}");
        h = fnv(h, &(label.len() as u64).to_le_bytes());
        h = fnv(h, label.as_bytes());
        h = fnv(h, &(stream.len() as u64).to_le_bytes());
        for r in stream {
            h = fnv(h, &r.at.to_bits().to_le_bytes());
            let ev = serde_json::to_string(&r.event).expect("trace events serialize");
            h = fnv(h, &(ev.len() as u64).to_le_bytes());
            h = fnv(h, ev.as_bytes());
        }
    }
    format!("sem-v{ENGINE_SEMANTICS_VERSION}-{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpipe_obs::TraceEvent;

    fn rec(seq: u64, at: f64, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq, at, event }
    }

    #[test]
    fn fingerprint_is_schedule_invariant_but_payload_sensitive() {
        let a = vec![
            rec(0, 1.0, TraceEvent::InstanceReady { instance: 1 }),
            rec(1, 1.0, TraceEvent::RequestArrival { req: 0 }),
        ];
        // Same instant, different entities, swapped order + renumbered.
        let b = vec![
            rec(0, 1.0, TraceEvent::RequestArrival { req: 0 }),
            rec(1, 1.0, TraceEvent::InstanceReady { instance: 1 }),
        ];
        assert_eq!(semantic_fingerprint(&a), semantic_fingerprint(&b));

        let c = vec![
            rec(0, 1.0, TraceEvent::InstanceReady { instance: 2 }),
            rec(1, 1.0, TraceEvent::RequestArrival { req: 0 }),
        ];
        assert_ne!(semantic_fingerprint(&a), semantic_fingerprint(&c));

        // Timestamps are part of semantics.
        let d = vec![
            rec(0, 1.0, TraceEvent::InstanceReady { instance: 1 }),
            rec(1, 1.5, TraceEvent::RequestArrival { req: 0 }),
        ];
        assert_ne!(semantic_fingerprint(&a), semantic_fingerprint(&d));
    }

    #[test]
    fn fingerprint_names_the_semantics_version() {
        let fp = semantic_fingerprint(&[]);
        assert!(
            fp.starts_with(&format!("sem-v{ENGINE_SEMANTICS_VERSION}-")),
            "{fp}"
        );
    }
}
