//! Bounded interleaving exploration: systematically permute the orderings
//! of same-virtual-time event batches of a committed scenario and check
//! every schedule converges to a semantically equivalent trace and a
//! byte-identical run report.
//!
//! A *schedule* is a finite prefix of tie-break choices: at step `i` the
//! engine pops the `choices[i]`-th event of the front batch (insertion
//! order), and index 0 — the canonical order — beyond the prefix. The
//! frontier is explored breadth-first over prefix length, so the first
//! divergence found is a **minimal** one, and each child prefix ends in a
//! non-zero choice (the all-zeros tail is the parent itself), which makes
//! the enumeration duplicate-free. Persistent-set pruning drops a choice
//! `c` when the chosen event commutes with everything popped before it in
//! the same batch (see [`crate::model::independent`]).

use std::collections::VecDeque;

use flexpipe_obs::TraceRecord;
use flexpipe_serving::ObservedRun;
use serde::{Deserialize, Serialize};

use crate::equiv::{check_equiv, SemanticDivergence};
use crate::model::independent;
use crate::scenarios::CheckScenario;

/// Bounds and switches for one exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum number of schedules to run (canonical one included).
    pub max_schedules: usize,
    /// Whether to prune schedules that only permute independent events.
    pub prune: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_schedules: 256,
            prune: true,
        }
    }
}

/// A replayable schedule: scenario name plus the tie-break choice prefix.
/// This is the spec the counterexample printer emits; feed it back through
/// [`replay`] to reproduce the divergent run exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleSpec {
    /// Name of the committed scenario ([`CheckScenario::named`]).
    pub scenario: String,
    /// Tie-break choices per step; steps beyond the prefix pick 0.
    pub choices: Vec<u32>,
}

/// A minimal divergent schedule found by [`explore`].
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The offending schedule, replayable via [`replay`].
    pub schedule: ScheduleSpec,
    /// First semantic divergence against the canonical trace, if the
    /// *trace* diverged (`None` means only the run report differed).
    pub divergence: Option<SemanticDivergence>,
    /// Whether the serialized run report differed byte-for-byte.
    pub reports_differ: bool,
}

impl Counterexample {
    /// Renders the counterexample with its replayable spec.
    pub fn render(&self) -> String {
        let spec = serde_json::to_string(&self.schedule).expect("schedule specs serialize");
        let mut out = format!(
            "schedule divergence in scenario '{}' (minimal prefix of {} choices)\n",
            self.schedule.scenario,
            self.schedule.choices.len()
        );
        match &self.divergence {
            Some(d) => out.push_str(&d.render("canonical", "permuted")),
            None => out.push_str("traces equivalent but run reports differ byte-for-byte\n"),
        }
        if self.reports_differ && self.divergence.is_some() {
            out.push_str("run reports also differ byte-for-byte\n");
        }
        out.push_str(&format!("replayable spec: {spec}\n"));
        out
    }
}

/// Outcome of one bounded exploration.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Schedules actually run (canonical one included).
    pub schedules: usize,
    /// Alternative choices skipped by persistent-set pruning.
    pub pruned: usize,
    /// Whether the frontier drained within `max_schedules` (i.e. the
    /// same-time interleavings were covered exhaustively modulo pruning).
    pub completed: bool,
    /// Largest front batch observed past any prefix.
    pub max_batch: usize,
    /// The minimal divergent schedule, if any schedule failed to converge.
    pub counterexample: Option<Counterexample>,
}

impl ExploreOutcome {
    /// Whether every explored schedule converged.
    pub fn converged(&self) -> bool {
        self.counterexample.is_none()
    }

    /// Renders the outcome for humans.
    pub fn render(&self, scenario: &str) -> String {
        match &self.counterexample {
            None => format!(
                "scenario '{scenario}': {} schedule(s) converged{} (pruned {}, max batch {}, {})\n",
                self.schedules,
                if self.completed { "" } else { " [bounded]" },
                self.pruned,
                self.max_batch,
                if self.completed {
                    "frontier exhausted"
                } else {
                    "frontier truncated by max-schedules"
                },
            ),
            Some(cx) => cx.render(),
        }
    }
}

/// Runs one schedule: follow `choices` while they last, canonical order
/// after. Past the prefix, collects the child prefixes to explore next
/// (one per batch position not excluded by pruning) — each child extends
/// this prefix with canonical zeros and one trailing non-zero choice, so
/// every schedule in the tree is generated exactly once.
fn run_schedule(
    sc: &CheckScenario,
    choices: &[u32],
    prune: bool,
    pruned: &mut usize,
    max_batch: &mut usize,
) -> (ObservedRun, Vec<Vec<u32>>) {
    let mut eng = sc.stepped();
    let mut children = Vec::new();
    let mut step_idx = 0usize;
    loop {
        let choice = choices.get(step_idx).copied().unwrap_or(0) as usize;
        let mut alts: Vec<u32> = Vec::new();
        if step_idx >= choices.len() {
            let batch = eng.batch();
            *max_batch = (*max_batch).max(batch.len());
            for c in 1..batch.len() {
                if prune && (0..c).all(|j| independent(batch[j], batch[c])) {
                    *pruned += 1;
                    continue;
                }
                alts.push(c as u32);
            }
        }
        if eng.step(choice).is_none() {
            // Terminal: the batch (if any) was never popped, so the
            // alternatives computed above are not reachable schedules.
            break;
        }
        for c in alts {
            let mut child = Vec::with_capacity(step_idx + 1);
            child.extend_from_slice(choices);
            child.resize(step_idx, 0);
            child.push(c);
            children.push(child);
        }
        step_idx += 1;
    }
    (eng.finish(), children)
}

/// Replays a schedule spec against its scenario, returning the finished
/// run. Panics if a choice indexes past its batch (a spec from a
/// different engine version).
pub fn replay(sc: &CheckScenario, spec: &ScheduleSpec) -> ObservedRun {
    assert_eq!(
        sc.name, spec.scenario,
        "schedule spec names a different scenario"
    );
    let mut pruned = 0;
    let mut max_batch = 0;
    run_schedule(sc, &spec.choices, false, &mut pruned, &mut max_batch).0
}

/// Explores the same-virtual-time interleavings of `sc` breadth-first,
/// comparing every schedule's trace (semantically) and run report
/// (byte-for-byte) against the canonical all-zeros schedule. Stops at the
/// first divergence — minimal by BFS order — or when the frontier drains
/// or `max_schedules` is hit.
pub fn explore(sc: &CheckScenario, config: &ExploreConfig) -> ExploreOutcome {
    let mut pruned = 0usize;
    let mut max_batch = 0usize;

    let (canon, seed) = run_schedule(sc, &[], config.prune, &mut pruned, &mut max_batch);
    let canon_records: Vec<TraceRecord> = canon.trace.records().cloned().collect();
    let canon_report = serde_json::to_string(&canon.report).expect("run reports serialize");

    let mut frontier: VecDeque<Vec<u32>> = seed.into();
    let mut schedules = 1usize;
    let mut completed = true;
    let mut counterexample = None;

    while let Some(prefix) = frontier.pop_front() {
        if schedules >= config.max_schedules {
            completed = false;
            break;
        }
        let (run, kids) = run_schedule(sc, &prefix, config.prune, &mut pruned, &mut max_batch);
        schedules += 1;
        let records: Vec<TraceRecord> = run.trace.records().cloned().collect();
        let divergence = check_equiv(&canon_records, &records).divergence;
        let reports_differ =
            serde_json::to_string(&run.report).expect("run reports serialize") != canon_report;
        if divergence.is_some() || reports_differ {
            counterexample = Some(Counterexample {
                schedule: ScheduleSpec {
                    scenario: sc.name.to_string(),
                    choices: prefix,
                },
                divergence,
                reports_differ,
            });
            break;
        }
        frontier.extend(kids);
    }

    ExploreOutcome {
        schedules,
        pruned,
        completed,
        max_batch,
        counterexample,
    }
}
