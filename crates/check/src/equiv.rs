//! Semantic trace equivalence: per-entity stream comparison with an
//! entity-anchored first-divergence report.

use flexpipe_obs::TraceRecord;

use crate::model::{normalize, project, Entity};

/// The first semantic divergence between two traces: the entity whose
/// stream differs, the position in that stream, and the offending event
/// pair (`None` on a side whose stream ended early).
#[derive(Debug, Clone)]
pub struct SemanticDivergence {
    /// The entity whose per-entity stream differs.
    pub entity: Entity,
    /// 0-based index into the entity's stream where it differs.
    pub index: usize,
    /// Left record at that position, if the left stream reaches it.
    pub left: Option<TraceRecord>,
    /// Right record at that position, if the right stream reaches it.
    pub right: Option<TraceRecord>,
}

impl SemanticDivergence {
    /// The virtual time the divergence is anchored at (the earliest
    /// timestamp among the offending pair).
    pub fn at(&self) -> f64 {
        match (&self.left, &self.right) {
            (Some(l), Some(r)) => l.at.min(r.at),
            (Some(l), None) => l.at,
            (None, Some(r)) => r.at,
            (None, None) => 0.0,
        }
    }

    fn side(r: &Option<TraceRecord>) -> String {
        match r {
            Some(rec) => serde_json::to_string(rec).unwrap_or_else(|_| format!("{:?}", rec.event)),
            None => "<stream ends here>".to_string(),
        }
    }

    /// Renders the divergence for humans.
    pub fn render(&self, left_name: &str, right_name: &str) -> String {
        format!(
            "semantic divergence on {} at t={:.6}s (stream position {}):\n  {left_name}: {}\n  {right_name}: {}\n",
            self.entity,
            self.at(),
            self.index,
            Self::side(&self.left),
            Self::side(&self.right),
        )
    }
}

/// Outcome of a semantic comparison of two traces.
#[derive(Debug, Clone)]
pub struct EquivReport {
    /// Records in the left trace.
    pub left_records: usize,
    /// Records in the right trace.
    pub right_records: usize,
    /// Distinct entities across both traces.
    pub entities: usize,
    /// The first semantic divergence (smallest virtual time, ties toward
    /// the smallest entity), or `None` when the traces are equivalent.
    pub divergence: Option<SemanticDivergence>,
}

impl EquivReport {
    /// Whether the traces are semantically equivalent.
    pub fn equivalent(&self) -> bool {
        self.divergence.is_none()
    }

    /// Renders the report for humans.
    pub fn render(&self, left_name: &str, right_name: &str) -> String {
        match &self.divergence {
            None => format!(
                "traces semantically equivalent: {} entities, {} vs {} records\n",
                self.entities, self.left_records, self.right_records
            ),
            Some(d) => d.render(left_name, right_name),
        }
    }
}

/// Compares two canonical traces for semantic equivalence: normalizes
/// allocation-order labels ([`normalize`]), projects each side into
/// per-entity streams and requires the projections to be identical
/// (events *and* timestamps). Since canonical traces are time-ordered,
/// this is exactly equality modulo reordering of same-timestamp events on
/// different entities — the commutation relation in the crate docs.
/// Divergence records are reported with normalized (per-instance) ubatch
/// labels.
pub fn check_equiv(left: &[TraceRecord], right: &[TraceRecord]) -> EquivReport {
    let left_n = normalize(left);
    let right_n = normalize(right);
    let lp = project(&left_n);
    let rp = project(&right_n);
    let entities: std::collections::BTreeSet<Entity> =
        lp.keys().chain(rp.keys()).copied().collect();

    let empty: Vec<&TraceRecord> = Vec::new();
    let mut best: Option<SemanticDivergence> = None;
    for &entity in &entities {
        let ls = lp.get(&entity).unwrap_or(&empty);
        let rs = rp.get(&entity).unwrap_or(&empty);
        let n = ls.len().max(rs.len());
        for i in 0..n {
            let l = ls.get(i).copied();
            let r = rs.get(i).copied();
            let matches = match (l, r) {
                (Some(l), Some(r)) => l.at == r.at && l.event == r.event,
                _ => false,
            };
            if matches {
                continue;
            }
            let cand = SemanticDivergence {
                entity,
                index: i,
                left: l.cloned(),
                right: r.cloned(),
            };
            let better = match &best {
                None => true,
                // Earliest virtual time wins; entity order breaks ties
                // (BTree iteration already visits entities in order, so
                // strictly-earlier is the only way to displace).
                Some(b) => cand.at() < b.at(),
            };
            if better {
                best = Some(cand);
            }
            break; // only the first divergence per entity matters
        }
    }

    EquivReport {
        left_records: left.len(),
        right_records: right.len(),
        entities: entities.len(),
        divergence: best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpipe_obs::TraceEvent;

    fn rec(seq: u64, at: f64, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq, at, event }
    }

    fn base() -> Vec<TraceRecord> {
        vec![
            rec(0, 1.0, TraceEvent::RequestArrival { req: 0 }),
            rec(1, 2.0, TraceEvent::InstanceReady { instance: 1 }),
            rec(
                2,
                2.0,
                TraceEvent::RequestAdmit {
                    req: 0,
                    instance: 1,
                },
            ),
            rec(
                3,
                3.0,
                TraceEvent::RequestComplete {
                    req: 0,
                    instance: 1,
                    generated: 4,
                },
            ),
        ]
    }

    #[test]
    fn identical_traces_are_equivalent() {
        let t = base();
        let rep = check_equiv(&t, &t);
        assert!(rep.equivalent());
        assert_eq!(rep.entities, 2);
        assert!(rep.render("a", "b").contains("equivalent"));
    }

    #[test]
    fn same_time_cross_entity_reorder_is_equivalent() {
        let t = base();
        let mut swapped = t.clone();
        // InstanceReady(instance 1) and RequestAdmit(request 0) share
        // t=2.0 but live on different entities: swapping them is
        // schedule noise.
        swapped.swap(1, 2);
        assert!(check_equiv(&t, &swapped).equivalent());
        // The fingerprint ignores seq, so renumbering is also fine.
        for (i, r) in swapped.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        assert!(check_equiv(&t, &swapped).equivalent());
    }

    #[test]
    fn same_entity_reorder_diverges() {
        let t = vec![
            rec(0, 2.0, TraceEvent::RefactorPause { instance: 1 }),
            rec(1, 2.0, TraceEvent::RefactorAbort { instance: 1 }),
        ];
        let mut swapped = t.clone();
        swapped.swap(0, 1);
        let rep = check_equiv(&t, &swapped);
        let d = rep.divergence.expect("must diverge");
        assert_eq!(d.entity, Entity::Instance(1));
        assert_eq!(d.index, 0);
        assert_eq!(d.at(), 2.0);
    }

    #[test]
    fn payload_mutation_diverges_on_the_right_entity() {
        let t = base();
        let mut mutated = t.clone();
        mutated[3] = rec(
            3,
            3.0,
            TraceEvent::RequestComplete {
                req: 0,
                instance: 1,
                generated: 5,
            },
        );
        let d = check_equiv(&t, &mutated).divergence.expect("diverges");
        assert_eq!(d.entity, Entity::Request(0));
        // Index is into the request's own stream: arrival, admit, complete.
        assert_eq!(d.index, 2);
        assert!(d.left.is_some() && d.right.is_some());
        let rendered = d.render("left", "right");
        assert!(rendered.contains("request 0"), "{rendered}");
    }

    #[test]
    fn truncated_side_reports_the_missing_tail() {
        let t = base();
        let cut = t[..3].to_vec();
        let d = check_equiv(&t, &cut).divergence.expect("diverges");
        assert_eq!(d.entity, Entity::Request(0));
        assert_eq!(d.index, 2);
        assert!(d.right.is_none());
        // Divergence picks the earliest virtual time across entities.
        let d2 = check_equiv(&t, &t[1..]).divergence.expect("d");
        assert_eq!(d2.entity, Entity::Request(0));
        assert_eq!(d2.index, 0);
        assert_eq!(d2.at(), 1.0);
    }
}
