//! The entity model behind semantic equivalence: which entity a trace
//! event belongs to, per-entity projection, and the static independence
//! relation the explorer prunes with.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use flexpipe_obs::{TraceEvent, TraceRecord};
use flexpipe_serving::Event;

/// The entity a trace event belongs to.
///
/// Per-entity event order is semantics; cross-entity order at the same
/// virtual timestamp is schedule noise (see the crate docs for the full
/// commutation relation). The derived `Ord` makes divergence reporting
/// deterministic when several entities diverge at the same instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Entity {
    /// One request's lifecycle (arrival/admit/prefill/complete/abort).
    Request(u64),
    /// One instance's lifecycle (spawn/ready/refactor*/decode/retire...).
    Instance(u64),
    /// The global disruption-episode stream (notice/revocation/restore/
    /// recovery-closed). Disruptions touch shared capacity, so their
    /// relative order is a report-affecting fact, not schedule noise.
    Disruption,
    /// The control-tick stream (periodic samples feeding timelines).
    Control,
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Entity::Request(r) => write!(f, "request {r}"),
            Entity::Instance(i) => write!(f, "instance {i}"),
            Entity::Disruption => write!(f, "disruption stream"),
            Entity::Control => write!(f, "control stream"),
        }
    }
}

/// Maps a trace event to its owning entity.
///
/// Events that mention both a request and an instance (admit, prefill,
/// complete, abort) project onto the *request*: the binding is still
/// compared — the instance id rides in the payload — but the event sits in
/// the request's lifecycle stream, which is the order the paper's claim is
/// about.
pub fn classify(event: &TraceEvent) -> Entity {
    match event {
        TraceEvent::RequestArrival { req }
        | TraceEvent::RequestAdmit { req, .. }
        | TraceEvent::RequestPrefillDone { req, .. }
        | TraceEvent::RequestComplete { req, .. }
        | TraceEvent::RequestAbort { req, .. } => Entity::Request(*req),
        TraceEvent::DecodeLaunch { instance, .. }
        | TraceEvent::InstanceSpawn { instance, .. }
        | TraceEvent::InstanceReady { instance }
        | TraceEvent::InstanceRetire { instance }
        | TraceEvent::InstanceRelease { instance }
        | TraceEvent::RefactorPrepare { instance, .. }
        | TraceEvent::RefactorPause { instance }
        | TraceEvent::RefactorCommit { instance, .. }
        | TraceEvent::RefactorAbort { instance }
        | TraceEvent::InstanceCrippled { instance, .. }
        | TraceEvent::PolicyAction { instance, .. } => Entity::Instance(*instance),
        TraceEvent::RevokeNotice { .. }
        | TraceEvent::Revocation { .. }
        | TraceEvent::CapacityRestore { .. }
        | TraceEvent::RecoveryClosed => Entity::Disruption,
        TraceEvent::ControlTick { .. } => Entity::Control,
    }
}

/// Projects a canonical (time-ordered) trace into per-entity streams,
/// preserving each entity's record order.
pub fn project(records: &[TraceRecord]) -> BTreeMap<Entity, Vec<&TraceRecord>> {
    let mut out: BTreeMap<Entity, Vec<&TraceRecord>> = BTreeMap::new();
    for r in records {
        out.entry(classify(&r.event)).or_default().push(r);
    }
    out
}

/// Rewrites allocation-order labels into canonical per-entity names.
///
/// Micro-batch ids come from a single global counter, so two instances
/// launching decode at the same instant draw ids in pop order — a
/// schedule artifact exactly like record `seq` numbers, not semantics.
/// Renumbering each instance's ubatches in order of first appearance
/// (alpha-renaming) makes the label schedule-invariant while still
/// catching real divergences (extra, missing or reordered launches, and
/// changed `members` counts, all stay visible).
pub fn normalize(records: &[TraceRecord]) -> Vec<TraceRecord> {
    let mut map: HashMap<(u64, u64), u64> = HashMap::new();
    let mut next: HashMap<u64, u64> = HashMap::new();
    records
        .iter()
        .map(|r| {
            let mut r = r.clone();
            if let TraceEvent::DecodeLaunch {
                instance, ubatch, ..
            } = &mut r.event
            {
                *ubatch = *map.entry((*instance, *ubatch)).or_insert_with(|| {
                    let n = next.entry(*instance).or_insert(0);
                    let v = *n;
                    *n += 1;
                    v
                });
            }
            r
        })
        .collect()
}

/// The static independence relation for persistent-set pruning.
///
/// Two *queue* events are independent iff both are instance-scoped
/// handlers on different instances. Only `StageArrive` (enqueue a
/// micro-batch + try-start, no gateway drain, no policy callback) and
/// `PrepareDone` (Preparing → Paused flip on one instance) qualify —
/// every other event kind reaches shared state (the gateway, the
/// admission index, the cluster pool, the policy) and is conservatively
/// treated as dependent. Swapping two independent events can never change
/// any entity's stream, so the explorer skips schedules that only differ
/// by such a swap.
pub fn independent(a: &Event, b: &Event) -> bool {
    fn scoped_instance(e: &Event) -> Option<u64> {
        match e {
            Event::StageArrive { id, .. } | Event::PrepareDone { id, .. } => Some(id.0),
            _ => None,
        }
    }
    match (scoped_instance(a), scoped_instance(b)) {
        (Some(x), Some(y)) => x != y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpipe_serving::{InstanceId, UbatchId};
    use flexpipe_sim::SimTime;

    fn rec(seq: u64, at: f64, event: TraceEvent) -> TraceRecord {
        let _ = SimTime::from_secs_f64(at);
        TraceRecord { seq, at, event }
    }

    #[test]
    fn classification_covers_the_vocabulary() {
        assert_eq!(
            classify(&TraceEvent::RequestAdmit {
                req: 7,
                instance: 3
            }),
            Entity::Request(7)
        );
        assert_eq!(
            classify(&TraceEvent::RefactorAbort { instance: 3 }),
            Entity::Instance(3)
        );
        assert_eq!(
            classify(&TraceEvent::Revocation { gpus: 2 }),
            Entity::Disruption
        );
        assert_eq!(
            classify(&TraceEvent::ControlTick {
                queued: 0,
                instances: 1
            }),
            Entity::Control
        );
    }

    #[test]
    fn projection_preserves_per_entity_order() {
        let records = vec![
            rec(0, 1.0, TraceEvent::RequestArrival { req: 0 }),
            rec(1, 1.0, TraceEvent::InstanceReady { instance: 5 }),
            rec(
                2,
                2.0,
                TraceEvent::RequestAdmit {
                    req: 0,
                    instance: 5,
                },
            ),
        ];
        let proj = project(&records);
        assert_eq!(proj.len(), 2);
        let req = &proj[&Entity::Request(0)];
        assert_eq!(req.len(), 2);
        assert_eq!(req[0].seq, 0);
        assert_eq!(req[1].seq, 2);
        assert_eq!(proj[&Entity::Instance(5)].len(), 1);
    }

    #[test]
    fn independence_is_instance_scoped_and_conservative() {
        let sa = |i: u64| Event::StageArrive {
            id: InstanceId(i),
            epoch: 0,
            stage: 0,
            ub: UbatchId(0),
        };
        let pd = |i: u64| Event::PrepareDone {
            id: InstanceId(i),
            epoch: 0,
        };
        assert!(independent(&sa(0), &sa(1)));
        assert!(independent(&sa(0), &pd(1)));
        assert!(!independent(&sa(0), &sa(0)));
        assert!(!independent(&sa(0), &pd(0)));
        // Anything global is dependent on everything.
        assert!(!independent(&sa(0), &Event::ControlTick));
        assert!(!independent(&Event::Churn, &Event::ControlTick));
    }
}
