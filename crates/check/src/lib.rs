//! Schedule-equivalence checking for the FlexPipe engine.
//!
//! FlexPipe's core claim is that inflight pipeline refactoring is a *pure*
//! availability optimization: admission, refactor prepare/pause/commit/
//! abort and revocation recovery must commute without changing what any
//! request observes. This crate turns that claim into machinery:
//!
//! 1. **Semantic trace equivalence** ([`check_equiv`]): two canonical
//!    `flexpipe-obs` JSONL traces are projected into per-entity event
//!    streams and compared modulo the commutation relation below,
//!    producing a structured [`EquivReport`] whose first divergence is
//!    anchored to an entity and an event pair — not a byte offset.
//! 2. **Bounded interleaving exploration** ([`fn@explore`]): a driver runs
//!    small committed scenarios through systematically permuted orderings
//!    of same-virtual-time event batches (via
//!    [`flexpipe_serving::SteppedEngine`]), asserting every schedule
//!    converges to an equivalent trace and a byte-identical report, with
//!    persistent-set pruning and a counterexample printer that emits the
//!    minimal divergent schedule as a replayable spec.
//! 3. **Fingerprint backstop** ([`semantic_fingerprint`]): a hash of the
//!    canonical per-entity streams of a committed probe scenario, pinned
//!    in a test, so semantics drift that forgets the manual
//!    [`flexpipe_serving::ENGINE_SEMANTICS_VERSION`] bump fails loudly
//!    instead of replaying stale campaign caches.
//! 4. **Cross-shard equivalence** ([`check_cross_shard`]): `N` shard
//!    traces of a sharded live run, merged, compared against the
//!    1-shard canonical trace on request streams only, with
//!    per-request-stream instance alpha-renaming — sharding renumbers
//!    instances per partition and multiplies the control streams, but
//!    request lifecycles must not notice.
//!
//! # The commutation relation
//!
//! Two traces are *semantically equivalent* iff their per-entity
//! projections are identical. The entities are: each request, each
//! instance, the (global) disruption-episode stream, and the control-tick
//! stream. Concretely this means:
//!
//! - **May reorder:** events carrying the same virtual timestamp that
//!   belong to *different* entities — e.g. a request admitted to instance
//!   A versus a refactor commit on instance B at the same instant.
//!   (Canonical traces are time-ordered, so cross-entity reordering at
//!   the same timestamp is the *only* freedom projection equality
//!   grants.)
//! - **May not reorder:** any two events on the same entity — a
//!   request's arrival → admit → prefill → complete/abort lifecycle, an
//!   instance's spawn → ready → refactor → retire lifecycle, the
//!   revoke-notice → revocation → capacity-restore → recovery-closed
//!   episode stream, and the control-tick sequence.
//! - **May not change at all:** event payloads — admit→instance
//!   bindings, decode-batch membership, generated-token counts,
//!   timestamps. A request admitted to a different instance under an
//!   alternative schedule is a semantic divergence even if "the same
//!   work" happened.
//! - **Quotiented out:** record sequence numbers and globally-allocated
//!   micro-batch ids. Both label *when the scheduler got around to
//!   something*, not what happened — ubatch ids are compared after
//!   per-instance renumbering in order of first appearance (see
//!   [`model::normalize`]).

pub mod cross_shard;
pub mod equiv;
pub mod explore;
pub mod fingerprint;
pub mod model;
pub mod scenarios;

pub use cross_shard::check_cross_shard;
pub use equiv::{check_equiv, EquivReport, SemanticDivergence};
pub use explore::{explore, replay, Counterexample, ExploreConfig, ExploreOutcome, ScheduleSpec};
pub use fingerprint::{semantic_fingerprint, PINNED_SEMANTIC_FINGERPRINT};
pub use model::{classify, independent, normalize, project, Entity};
pub use scenarios::CheckScenario;
