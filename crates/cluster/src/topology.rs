//! Physical cluster topology: racks, servers, GPUs and their links.
//!
//! The FlexPipe paper evaluates on a 42-server / 82-GPU Kubernetes cluster
//! with 100 Gbps networking and ≥256 GB of host memory per server (§9), and
//! motivates the design with statistics from two Alibaba clusters (§3,
//! Table 1: C1 with 430 nodes / 468 GPUs, C2 with 927 nodes / 1175 GPUs).
//! [`ClusterSpec`] can describe all three; constructors for each are
//! provided.

use serde::{Deserialize, Serialize};

/// Identifier of a GPU within a [`crate::Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GpuId(pub u32);

/// Identifier of a server within a [`crate::Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServerId(pub u32);

/// Identifier of a rack within a [`crate::Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RackId(pub u32);

/// Hardware description of one GPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Device memory capacity in bytes (A100-80GB by default).
    pub mem_bytes: u64,
    /// Peak dense compute in TFLOP/s (used by the analytic cost model).
    pub sm_tflops: f64,
}

impl GpuSpec {
    /// An A100-80GB-like device.
    pub const fn a100_80g() -> Self {
        GpuSpec {
            mem_bytes: 80 * (1 << 30),
            sm_tflops: 312.0,
        }
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::a100_80g()
    }
}

/// Per-link bandwidth/latency parameters of the interconnect hierarchy.
///
/// Bandwidths are bytes/second; latencies are one-way startup costs.
/// Defaults follow the environments the paper describes: NVLink for
/// co-located GPUs, PCIe 4.0 x16 to host memory, 100 Gbps Ethernet between
/// servers, and cold persistent storage at ~0.7 GB/s (the value implied by
/// Table 2's parameter-loading times).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// GPU-to-GPU NVLink bandwidth within one server, bytes/s.
    pub nvlink_bw: f64,
    /// GPU↔host PCIe bandwidth, bytes/s.
    pub pcie_bw: f64,
    /// Server-to-server network bandwidth, bytes/s.
    pub network_bw: f64,
    /// Cross-rack network bandwidth (aggregation layer), bytes/s.
    pub cross_rack_bw: f64,
    /// Persistent-storage read bandwidth, bytes/s.
    pub storage_bw: f64,
    /// One-way network latency between servers.
    pub network_latency_us: f64,
    /// Setup cost of establishing an RDMA connection (once per peer pair).
    pub rdma_setup_us: f64,
    /// Setup cost of a NCCL-style connection (the paper reports seconds;
    /// FlexPipe avoids this path entirely, see §8).
    pub nccl_setup_ms: f64,
    /// Whether RDMA NICs are present (else fall back to sendfile-style
    /// kernel transfers at a throughput discount, §8).
    pub rdma: bool,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            nvlink_bw: 300.0e9,
            pcie_bw: 24.0e9,
            network_bw: 12.5e9,    // 100 Gbps
            cross_rack_bw: 10.0e9, // slight oversubscription at aggregation
            storage_bw: 0.7e9,     // calibrated from Table 2 load times
            network_latency_us: 25.0,
            rdma_setup_us: 150.0,
            nccl_setup_ms: 2_800.0,
            rdma: true,
        }
    }
}

/// Description of one server: its rack, GPU count, and host memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Rack housing this server.
    pub rack: RackId,
    /// Number of GPUs attached.
    pub gpus: u32,
    /// Host DRAM capacity in bytes (≥256 GB in the paper's testbed).
    pub host_mem_bytes: u64,
    /// Whether co-located GPUs are NVLink-connected.
    pub nvlink: bool,
}

/// Complete static description of a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Human-readable name used in experiment output.
    pub name: String,
    /// Per-server descriptions.
    pub servers: Vec<ServerSpec>,
    /// GPU hardware model (uniform across the cluster).
    pub gpu: GpuSpec,
    /// Interconnect parameters.
    pub links: LinkSpec,
}

impl ClusterSpec {
    /// The paper's 42-server / 82-GPU evaluation testbed (§9): forty
    /// 2-GPU servers plus two 1-GPU servers, 256 GB hosts, 100 Gbps network,
    /// 6 racks.
    pub fn paper_testbed() -> Self {
        let mut servers = Vec::with_capacity(42);
        for i in 0..42u32 {
            let rack = RackId(i / 7);
            let gpus = if i < 40 { 2 } else { 1 };
            servers.push(ServerSpec {
                rack,
                gpus,
                host_mem_bytes: 256 * (1 << 30),
                nvlink: i % 4 == 0, // only a minority of servers have NVLink pairs
            });
        }
        ClusterSpec {
            name: "paper-testbed-42s-82g".into(),
            servers,
            gpu: GpuSpec::a100_80g(),
            links: LinkSpec::default(),
        }
    }

    /// Alibaba inference-only cluster C1 (Table 1): 430 nodes, 468 GPUs.
    ///
    /// Most nodes carry a single GPU; a small set of 8-GPU and 2-GPU boxes
    /// makes up the difference, mirroring heterogeneous inference fleets.
    pub fn alibaba_c1() -> Self {
        Self::heterogeneous("alibaba-c1", 430, 468, 43)
    }

    /// Alibaba hybrid training/inference cluster C2 (Table 1): 927 nodes,
    /// 1175 GPUs.
    pub fn alibaba_c2() -> Self {
        Self::heterogeneous("alibaba-c2", 927, 1175, 92)
    }

    /// Builds a heterogeneous cluster of `nodes` servers totalling
    /// `total_gpus` GPUs, `servers_per_rack` per rack; multi-GPU servers are
    /// placed first.
    pub fn heterogeneous(name: &str, nodes: u32, total_gpus: u32, servers_per_rack: u32) -> Self {
        assert!(total_gpus >= nodes, "need at least one GPU per node");
        let mut extra = total_gpus - nodes; // GPUs beyond one-per-node
        let mut servers = Vec::with_capacity(nodes as usize);
        for i in 0..nodes {
            // Greedily assign remaining extra GPUs in blocks of 7 (making
            // 8-GPU boxes), then 1 (making 2-GPU boxes).
            let bonus = if extra >= 7 {
                extra -= 7;
                7
            } else if extra >= 1 {
                extra -= 1;
                1
            } else {
                0
            };
            servers.push(ServerSpec {
                rack: RackId(i / servers_per_rack.max(1)),
                gpus: 1 + bonus,
                host_mem_bytes: 256 * (1 << 30),
                nvlink: bonus == 7,
            });
        }
        ClusterSpec {
            name: name.into(),
            servers,
            gpu: GpuSpec::a100_80g(),
            links: LinkSpec::default(),
        }
    }

    /// Splits the cluster into `n` disjoint shard partitions by chunking
    /// the server list round-robin-free (contiguous slices, sized as
    /// evenly as possible, earlier shards take the remainder). Each
    /// partition keeps the GPU and link parameters and renumbers racks
    /// densely from zero so per-shard topologies stand alone. Used by the
    /// live-serving gateway: shard `i` simulates partition `i` as an
    /// independent cluster.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or exceeds the server count (a shard
    /// without servers cannot host instances).
    pub fn partition(&self, n: u32) -> Vec<ClusterSpec> {
        assert!(n > 0, "partition count must be positive");
        assert!(
            (n as usize) <= self.servers.len(),
            "cannot split {} servers into {n} shards",
            self.servers.len()
        );
        let n = n as usize;
        let base = self.servers.len() / n;
        let rem = self.servers.len() % n;
        let mut start = 0;
        (0..n)
            .map(|i| {
                let len = base + usize::from(i < rem);
                let slice = &self.servers[start..start + len];
                start += len;
                // Dense rack renumbering in order of first appearance.
                let mut racks: Vec<RackId> = Vec::new();
                let servers = slice
                    .iter()
                    .map(|s| {
                        let rack = match racks.iter().position(|&r| r == s.rack) {
                            Some(idx) => RackId(idx as u32),
                            None => {
                                racks.push(s.rack);
                                RackId(racks.len() as u32 - 1)
                            }
                        };
                        ServerSpec { rack, ..*s }
                    })
                    .collect();
                ClusterSpec {
                    name: format!("{}-shard{i}of{n}", self.name),
                    servers,
                    gpu: self.gpu,
                    links: self.links,
                }
            })
            .collect()
    }

    /// Total number of GPUs across all servers.
    pub fn total_gpus(&self) -> u32 {
        self.servers.iter().map(|s| s.gpus).sum()
    }

    /// Number of racks (highest rack id + 1).
    pub fn rack_count(&self) -> u32 {
        self.servers.iter().map(|s| s.rack.0 + 1).max().unwrap_or(0)
    }
}

/// Static per-GPU topology record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuInfo {
    /// This GPU's id.
    pub id: GpuId,
    /// Hosting server.
    pub server: ServerId,
    /// Hosting rack.
    pub rack: RackId,
    /// Whether the hosting server has NVLink between its GPUs.
    pub nvlink: bool,
}

/// Materialised topology with id-indexed lookup tables.
#[derive(Debug, Clone)]
pub struct Topology {
    spec: ClusterSpec,
    gpus: Vec<GpuInfo>,
    server_gpus: Vec<Vec<GpuId>>,
    rack_servers: Vec<Vec<ServerId>>,
}

impl Topology {
    /// Materialises lookup tables from a spec.
    pub fn new(spec: ClusterSpec) -> Self {
        let mut gpus = Vec::new();
        let mut server_gpus = Vec::with_capacity(spec.servers.len());
        let mut rack_servers: Vec<Vec<ServerId>> = vec![Vec::new(); spec.rack_count() as usize];
        for (si, server) in spec.servers.iter().enumerate() {
            let sid = ServerId(si as u32);
            let mut ids = Vec::with_capacity(server.gpus as usize);
            for _ in 0..server.gpus {
                let gid = GpuId(gpus.len() as u32);
                gpus.push(GpuInfo {
                    id: gid,
                    server: sid,
                    rack: server.rack,
                    nvlink: server.nvlink,
                });
                ids.push(gid);
            }
            server_gpus.push(ids);
            rack_servers[server.rack.0 as usize].push(sid);
        }
        Topology {
            spec,
            gpus,
            server_gpus,
            rack_servers,
        }
    }

    /// The originating spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// All GPUs in id order.
    pub fn gpus(&self) -> &[GpuInfo] {
        &self.gpus
    }

    /// Looks up one GPU's topology record.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this cluster.
    pub fn gpu(&self, id: GpuId) -> GpuInfo {
        self.gpus[id.0 as usize]
    }

    /// Number of GPUs.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.server_gpus.len()
    }

    /// GPUs attached to `server`.
    pub fn gpus_on(&self, server: ServerId) -> &[GpuId] {
        &self.server_gpus[server.0 as usize]
    }

    /// Servers in `rack`.
    pub fn servers_in(&self, rack: RackId) -> &[ServerId] {
        &self.rack_servers[rack.0 as usize]
    }

    /// Host memory capacity of `server` in bytes.
    pub fn host_mem(&self, server: ServerId) -> u64 {
        self.spec.servers[server.0 as usize].host_mem_bytes
    }

    /// Whether two GPUs share a server.
    pub fn same_server(&self, a: GpuId, b: GpuId) -> bool {
        self.gpu(a).server == self.gpu(b).server
    }

    /// Whether two GPUs share a rack.
    pub fn same_rack(&self, a: GpuId, b: GpuId) -> bool {
        self.gpu(a).rack == self.gpu(b).rack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_headline_numbers() {
        let spec = ClusterSpec::paper_testbed();
        assert_eq!(spec.servers.len(), 42);
        assert_eq!(spec.total_gpus(), 82);
        assert_eq!(spec.rack_count(), 6);
    }

    #[test]
    fn alibaba_clusters_match_table1() {
        let c1 = ClusterSpec::alibaba_c1();
        assert_eq!(c1.servers.len(), 430);
        assert_eq!(c1.total_gpus(), 468);
        let c2 = ClusterSpec::alibaba_c2();
        assert_eq!(c2.servers.len(), 927);
        assert_eq!(c2.total_gpus(), 1175);
    }

    #[test]
    fn partition_splits_servers_and_gpus_without_loss() {
        let spec = ClusterSpec::paper_testbed();
        for n in [1u32, 2, 3, 4] {
            let shards = spec.partition(n);
            assert_eq!(shards.len(), n as usize);
            let servers: usize = shards.iter().map(|s| s.servers.len()).sum();
            assert_eq!(servers, spec.servers.len());
            let gpus: u32 = shards.iter().map(|s| s.total_gpus()).sum();
            assert_eq!(gpus, spec.total_gpus());
            for shard in &shards {
                // Dense rack ids: every shard topology stands alone.
                assert!((0..shard.rack_count())
                    .all(|r| shard.servers.iter().any(|s| s.rack == RackId(r))));
                assert_eq!(shard.gpu, spec.gpu);
            }
            // Even split: sizes differ by at most one server.
            let sizes: Vec<usize> = shards.iter().map(|s| s.servers.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1);
        }
        assert_eq!(spec.partition(1)[0].servers, spec.servers);
    }

    #[test]
    fn topology_lookup_tables_are_consistent() {
        let topo = Topology::new(ClusterSpec::paper_testbed());
        assert_eq!(topo.gpu_count(), 82);
        assert_eq!(topo.server_count(), 42);
        // Every GPU is listed exactly once on its own server.
        for info in topo.gpus() {
            let on_server = topo.gpus_on(info.server);
            assert!(on_server.contains(&info.id));
            assert!(topo.servers_in(info.rack).contains(&info.server));
        }
        // Server GPU lists partition all GPUs.
        let total: usize = (0..topo.server_count())
            .map(|s| topo.gpus_on(ServerId(s as u32)).len())
            .sum();
        assert_eq!(total, topo.gpu_count());
    }

    #[test]
    fn same_server_and_rack_relations() {
        let topo = Topology::new(ClusterSpec::paper_testbed());
        // Server 0 has two GPUs: ids 0 and 1.
        assert!(topo.same_server(GpuId(0), GpuId(1)));
        assert!(!topo.same_server(GpuId(0), GpuId(2)));
        assert!(topo.same_rack(GpuId(0), GpuId(2)));
        let last = GpuId((topo.gpu_count() - 1) as u32);
        assert!(!topo.same_rack(GpuId(0), last));
    }

    #[test]
    fn heterogeneous_distributes_extra_gpus() {
        let spec = ClusterSpec::heterogeneous("t", 10, 25, 5);
        assert_eq!(spec.total_gpus(), 25);
        assert_eq!(spec.servers.len(), 10);
        // Two 8-GPU servers (7+7 extra), one 2-GPU server, rest single.
        let eights = spec.servers.iter().filter(|s| s.gpus == 8).count();
        assert_eq!(eights, 2);
    }
}
