//! Hierarchical data-transfer cost model (paper §8).
//!
//! After pipeline refactoring, KV-cache and parameter bytes must move
//! between devices. The paper's implementation avoids NCCL (multi-second
//! connection establishment) in favour of RDMA where available, falling
//! back to `sendfile`-style kernel transfers otherwise. This module turns a
//! (source, destination, bytes) triple into a simulated duration using the
//! interconnect hierarchy: NVLink within a server, PCIe through host
//! memory, and the network across servers — with per-mechanism setup costs.

use serde::{Deserialize, Serialize};

use flexpipe_sim::SimDuration;

use crate::state::Cluster;
use crate::topology::{GpuId, LinkSpec, ServerId};

/// One endpoint of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// GPU device memory.
    Gpu(GpuId),
    /// Host DRAM of a server.
    Host(ServerId),
    /// The shared persistent model store (registry / blob storage).
    Storage,
}

/// The physical route a transfer takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Route {
    /// Same-server GPU↔GPU over NVLink.
    NvLink,
    /// Same-server GPU↔GPU bounced through host memory over PCIe.
    PcieBounce,
    /// Same-server GPU↔host over PCIe.
    PcieHost,
    /// Cross-server via RDMA NICs (GPU or host source/sink).
    Rdma,
    /// Cross-server via kernel `sendfile` fallback (no RDMA NICs).
    Sendfile,
    /// Cold read from persistent storage.
    Storage,
}

/// Transfer mechanism choice and cost computation.
///
/// # Examples
///
/// ```
/// use flexpipe_cluster::{Cluster, ClusterSpec, Endpoint, TransferEngine};
/// use flexpipe_cluster::topology::GpuId;
///
/// let cluster = Cluster::new(ClusterSpec::paper_testbed());
/// let engine = TransferEngine::new(cluster.topology().spec().links);
/// // 1 GiB between two GPUs on different servers.
/// let d = engine.duration(&cluster, Endpoint::Gpu(GpuId(0)), Endpoint::Gpu(GpuId(5)), 1 << 30);
/// assert!(d.as_secs_f64() > 0.05); // bounded by the 100 Gbps network
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TransferEngine {
    links: LinkSpec,
}

impl TransferEngine {
    /// Builds an engine over the given link parameters.
    pub fn new(links: LinkSpec) -> Self {
        TransferEngine { links }
    }

    /// The link parameters in use.
    pub fn links(&self) -> &LinkSpec {
        &self.links
    }

    /// Chooses the route between two endpoints.
    pub fn route(&self, cluster: &Cluster, src: Endpoint, dst: Endpoint) -> Route {
        use Endpoint::*;
        match (src, dst) {
            (Storage, _) | (_, Storage) => Route::Storage,
            (Gpu(a), Gpu(b)) => {
                let topo = cluster.topology();
                if topo.same_server(a, b) {
                    if topo.gpu(a).nvlink {
                        Route::NvLink
                    } else {
                        Route::PcieBounce
                    }
                } else if self.links.rdma {
                    Route::Rdma
                } else {
                    Route::Sendfile
                }
            }
            (Gpu(g), Host(s)) | (Host(s), Gpu(g)) => {
                if cluster.topology().gpu(g).server == s {
                    Route::PcieHost
                } else if self.links.rdma {
                    Route::Rdma
                } else {
                    Route::Sendfile
                }
            }
            (Host(a), Host(b)) => {
                if a == b {
                    // Same-host memcpy: treat as PCIe-class bandwidth.
                    Route::PcieHost
                } else if self.links.rdma {
                    Route::Rdma
                } else {
                    Route::Sendfile
                }
            }
        }
    }

    /// Effective bandwidth of a route in bytes/second.
    pub fn bandwidth(&self, route: Route) -> f64 {
        match route {
            Route::NvLink => self.links.nvlink_bw,
            Route::PcieBounce => self.links.pcie_bw / 2.0, // two PCIe crossings
            Route::PcieHost => self.links.pcie_bw,
            Route::Rdma => self.links.network_bw,
            // §8: sendfile avoids user-space copies but not kernel
            // protocol overhead; model as a 30% throughput discount.
            Route::Sendfile => self.links.network_bw * 0.7,
            Route::Storage => self.links.storage_bw,
        }
    }

    /// Setup latency incurred once per transfer.
    pub fn setup(&self, route: Route) -> SimDuration {
        match route {
            Route::NvLink => SimDuration::from_micros(5),
            Route::PcieBounce | Route::PcieHost => SimDuration::from_micros(15),
            Route::Rdma => SimDuration::from_secs_f64(
                (self.links.network_latency_us + self.links.rdma_setup_us) / 1e6,
            ),
            Route::Sendfile => SimDuration::from_secs_f64(
                // TCP connection + syscall path; no RDMA registration.
                (self.links.network_latency_us * 3.0 + 200.0) / 1e6,
            ),
            Route::Storage => SimDuration::from_millis(8),
        }
    }

    /// Setup latency a NCCL-style collective would pay instead (kept for
    /// the ablation that motivates §8's design).
    pub fn nccl_setup(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.links.nccl_setup_ms)
    }

    /// Total duration to move `bytes` from `src` to `dst`.
    pub fn duration(
        &self,
        cluster: &Cluster,
        src: Endpoint,
        dst: Endpoint,
        bytes: u64,
    ) -> SimDuration {
        let route = self.route(cluster, src, dst);
        self.duration_on(route, bytes)
    }

    /// Total duration on a pre-computed route.
    pub fn duration_on(&self, route: Route, bytes: u64) -> SimDuration {
        let bw = self.bandwidth(route);
        self.setup(route) + SimDuration::from_secs_f64(bytes as f64 / bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClusterSpec;

    fn setup() -> (Cluster, TransferEngine) {
        let cluster = Cluster::new(ClusterSpec::paper_testbed());
        let engine = TransferEngine::new(cluster.topology().spec().links);
        (cluster, engine)
    }

    #[test]
    fn routes_follow_topology() {
        let (c, e) = setup();
        // GPUs 0 and 1 share server 0, which has NVLink (server 0 % 4 == 0).
        assert_eq!(
            e.route(&c, Endpoint::Gpu(GpuId(0)), Endpoint::Gpu(GpuId(1))),
            Route::NvLink
        );
        // GPUs 2 and 3 share server 1 (no NVLink) → PCIe bounce.
        assert_eq!(
            e.route(&c, Endpoint::Gpu(GpuId(2)), Endpoint::Gpu(GpuId(3))),
            Route::PcieBounce
        );
        // Cross-server with RDMA NICs.
        assert_eq!(
            e.route(&c, Endpoint::Gpu(GpuId(0)), Endpoint::Gpu(GpuId(4))),
            Route::Rdma
        );
        // GPU to its own host.
        assert_eq!(
            e.route(&c, Endpoint::Gpu(GpuId(0)), Endpoint::Host(ServerId(0))),
            Route::PcieHost
        );
        // Anything touching storage.
        assert_eq!(
            e.route(&c, Endpoint::Storage, Endpoint::Gpu(GpuId(0))),
            Route::Storage
        );
    }

    #[test]
    fn sendfile_fallback_without_rdma() {
        let mut spec = ClusterSpec::paper_testbed();
        spec.links.rdma = false;
        let c = Cluster::new(spec);
        let e = TransferEngine::new(c.topology().spec().links);
        assert_eq!(
            e.route(&c, Endpoint::Gpu(GpuId(0)), Endpoint::Gpu(GpuId(4))),
            Route::Sendfile
        );
        // Sendfile is slower than RDMA for the same payload.
        let rdma = TransferEngine::new(ClusterSpec::paper_testbed().links);
        let bytes = 256 << 20;
        assert!(e.duration_on(Route::Sendfile, bytes) > rdma.duration_on(Route::Rdma, bytes));
    }

    #[test]
    fn bandwidth_hierarchy_ordering() {
        let (_, e) = setup();
        assert!(e.bandwidth(Route::NvLink) > e.bandwidth(Route::PcieHost));
        assert!(e.bandwidth(Route::PcieHost) > e.bandwidth(Route::Rdma));
        assert!(e.bandwidth(Route::Rdma) > e.bandwidth(Route::Storage));
    }

    #[test]
    fn duration_scales_linearly_in_bytes() {
        let (_, e) = setup();
        let d1 = e.duration_on(Route::Rdma, 100 << 20).as_secs_f64();
        let d2 = e.duration_on(Route::Rdma, 200 << 20).as_secs_f64();
        let setup = e.setup(Route::Rdma).as_secs_f64();
        assert!(((d2 - setup) / (d1 - setup) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn rdma_beats_nccl_setup_by_orders_of_magnitude() {
        // The §8 claim: NCCL-style connection setup costs seconds while the
        // RDMA path is microseconds.
        let (_, e) = setup();
        let nccl = e.nccl_setup().as_secs_f64();
        let rdma = e.setup(Route::Rdma).as_secs_f64();
        assert!(nccl / rdma > 1000.0, "nccl {nccl} rdma {rdma}");
    }

    #[test]
    fn table2_load_time_shape() {
        // Loading 33 GB (one 4-stage OPT-66B stage) from storage should take
        // tens of seconds; loading 4.1 GB (one 32-stage stage) a few seconds —
        // the 8.7x elasticity ratio of Table 2.
        let (_, e) = setup();
        let four_stage = e.duration_on(Route::Storage, 33 * (1 << 30)).as_secs_f64();
        let thirty_two = e.duration_on(Route::Storage, 4125 << 20).as_secs_f64();
        assert!((40.0..60.0).contains(&four_stage), "{four_stage}");
        assert!((4.0..8.0).contains(&thirty_two), "{thirty_two}");
        assert!((four_stage / thirty_two - 8.0).abs() < 1.5);
    }
}
