//! Dual-tier serverless GPU provisioning (paper §2.2, §3.1, §9.6).
//!
//! Serverless platforms split capacity into an *always-on* tier (60–75% of
//! historical peak in production, which FlexPipe cuts to 30%) and an
//! *elastic* tier where GPUs must be provisioned on demand — paying a
//! multi-second scheduler/container delay — and are reclaimed by competing
//! workloads shortly after release. [`Provisioner`] models exactly that
//! lifecycle and records the allocation wait times the §9.6 case study
//! reports on.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use flexpipe_sim::{SimDuration, SimTime};

use crate::state::Cluster;
use crate::topology::GpuId;

/// Dual-tier provisioning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierConfig {
    /// Provisioning delay for a cold elastic GPU (scheduler + container +
    /// runtime init; parameter loading is modelled separately).
    pub elastic_delay: SimDuration,
    /// How long a released elastic GPU stays reserved to us ("warm")
    /// before the platform reclaims it. The paper cites 5-minute windows.
    pub reclaim_window: SimDuration,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            elastic_delay: SimDuration::from_secs(4),
            reclaim_window: SimDuration::from_secs(300),
        }
    }
}

/// How an acquisition was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AcquireKind {
    /// From the pinned always-on tier: usable immediately.
    AlwaysOn,
    /// A still-warm elastic GPU from a recent release: usable immediately.
    WarmElastic,
    /// A cold elastic GPU: usable after the provisioning delay.
    ColdElastic,
}

/// Result of acquiring one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Acquisition {
    /// The GPU granted.
    pub gpu: GpuId,
    /// When it becomes usable.
    pub ready_at: SimTime,
    /// Which tier satisfied the request.
    pub kind: AcquireKind,
}

/// Tracks tier membership and provisioning state for one deployment.
#[derive(Debug, Clone)]
pub struct Provisioner {
    cfg: TierConfig,
    always_on: Vec<GpuId>,
    in_use: HashMap<GpuId, AcquireKind>,
    warm: HashMap<GpuId, SimTime>, // expiry of the reclaim window
    waits: Vec<SimDuration>,
}

impl Provisioner {
    /// Creates a provisioner whose always-on tier is the given GPU set.
    pub fn new(cfg: TierConfig, always_on: Vec<GpuId>) -> Self {
        Provisioner {
            cfg,
            always_on,
            in_use: HashMap::new(),
            warm: HashMap::new(),
            waits: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TierConfig {
        &self.cfg
    }

    /// GPUs pinned in the always-on tier.
    pub fn always_on(&self) -> &[GpuId] {
        &self.always_on
    }

    /// Number of GPUs currently acquired.
    pub fn in_use_count(&self) -> usize {
        self.in_use.len()
    }

    /// Whether `gpu` is currently acquired by us.
    pub fn is_in_use(&self, gpu: GpuId) -> bool {
        self.in_use.contains_key(&gpu)
    }

    /// Acquires `gpu` at time `now`, classifying the tier it comes from and
    /// computing when it will be usable.
    ///
    /// The caller is responsible for having checked device memory via
    /// [`Cluster::free_mem`]; the provisioner only models control-plane
    /// readiness.
    pub fn acquire(&mut self, gpu: GpuId, now: SimTime) -> Acquisition {
        self.expire_warm(now);
        let kind = if self.always_on.contains(&gpu) {
            AcquireKind::AlwaysOn
        } else if self.warm.remove(&gpu).is_some() {
            AcquireKind::WarmElastic
        } else {
            AcquireKind::ColdElastic
        };
        let ready_at = match kind {
            AcquireKind::AlwaysOn | AcquireKind::WarmElastic => now,
            AcquireKind::ColdElastic => now + self.cfg.elastic_delay,
        };
        self.in_use.insert(gpu, kind);
        self.waits.push(ready_at.saturating_since(now));
        Acquisition {
            gpu,
            ready_at,
            kind,
        }
    }

    /// Releases `gpu` at time `now`. Elastic GPUs enter the warm window;
    /// always-on GPUs simply return to the pinned pool.
    pub fn release(&mut self, gpu: GpuId, now: SimTime) {
        if let Some(kind) = self.in_use.remove(&gpu) {
            if kind != AcquireKind::AlwaysOn {
                self.warm.insert(gpu, now + self.cfg.reclaim_window);
            }
        }
    }

    /// Forcibly removes `gpu` from every tier: in-use, warm, and the
    /// always-on pin list. Used when the platform *revokes* the device
    /// (spot preemption, hardware failure) — unlike [`Provisioner::release`]
    /// the GPU does not enter the warm window, because it is no longer
    /// ours to re-acquire. A later restore re-enters it as cold elastic.
    pub fn evict(&mut self, gpu: GpuId) {
        self.in_use.remove(&gpu);
        self.warm.remove(&gpu);
        self.always_on.retain(|&g| g != gpu);
    }

    /// Drops warm reservations whose reclaim window has passed.
    pub fn expire_warm(&mut self, now: SimTime) {
        self.warm.retain(|_, &mut expiry| expiry > now);
    }

    /// GPUs currently inside their warm reclaim window.
    pub fn warm_gpus(&self) -> impl Iterator<Item = GpuId> + '_ {
        self.warm.keys().copied()
    }

    /// Whether acquiring `gpu` at `now` would be instant (pinned always-on
    /// or still inside its warm reclaim window).
    pub fn is_instant(&self, gpu: GpuId, now: SimTime) -> bool {
        self.always_on.contains(&gpu) || self.warm.get(&gpu).is_some_and(|&expiry| expiry > now)
    }

    /// Mean allocation wait across all acquisitions so far, seconds.
    pub fn mean_wait_secs(&self) -> f64 {
        if self.waits.is_empty() {
            return 0.0;
        }
        self.waits.iter().map(|d| d.as_secs_f64()).sum::<f64>() / self.waits.len() as f64
    }

    /// All recorded waits.
    pub fn waits(&self) -> &[SimDuration] {
        &self.waits
    }
}

/// First-fit search for `count` GPUs with at least `min_free` bytes free,
/// optionally on pairwise-distinct servers, skipping `exclude`.
///
/// This is the naive allocator the baselines use; FlexPipe replaces it with
/// the Hierarchical Resource Graph in `flexpipe-core`.
pub fn first_fit(
    cluster: &Cluster,
    count: usize,
    min_free: u64,
    distinct_servers: bool,
    exclude: &[GpuId],
) -> Option<Vec<GpuId>> {
    let mut chosen = Vec::with_capacity(count);
    let mut used_servers = Vec::new();
    for info in cluster.topology().gpus() {
        if chosen.len() == count {
            break;
        }
        if exclude.contains(&info.id) {
            continue;
        }
        if cluster.free_mem(info.id) < min_free {
            continue;
        }
        if distinct_servers && used_servers.contains(&info.server) {
            continue;
        }
        chosen.push(info.id);
        used_servers.push(info.server);
    }
    (chosen.len() == count).then_some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClusterSpec;

    fn provisioner() -> Provisioner {
        Provisioner::new(TierConfig::default(), vec![GpuId(0), GpuId(1), GpuId(2)])
    }

    #[test]
    fn always_on_is_instant() {
        let mut p = provisioner();
        let now = SimTime::from_secs(10);
        let a = p.acquire(GpuId(0), now);
        assert_eq!(a.kind, AcquireKind::AlwaysOn);
        assert_eq!(a.ready_at, now);
    }

    #[test]
    fn cold_elastic_pays_delay() {
        let mut p = provisioner();
        let now = SimTime::from_secs(10);
        let a = p.acquire(GpuId(9), now);
        assert_eq!(a.kind, AcquireKind::ColdElastic);
        assert_eq!(a.ready_at, now + TierConfig::default().elastic_delay);
        assert!(p.mean_wait_secs() > 0.0);
    }

    #[test]
    fn release_then_reacquire_within_window_is_warm() {
        let mut p = provisioner();
        let t0 = SimTime::from_secs(0);
        p.acquire(GpuId(9), t0);
        p.release(GpuId(9), SimTime::from_secs(5));
        let a = p.acquire(GpuId(9), SimTime::from_secs(100));
        assert_eq!(a.kind, AcquireKind::WarmElastic);
        assert_eq!(a.ready_at, SimTime::from_secs(100));
    }

    #[test]
    fn warm_window_expires() {
        let mut p = provisioner();
        p.acquire(GpuId(9), SimTime::from_secs(0));
        p.release(GpuId(9), SimTime::from_secs(5));
        // 5 + 300 = 305; at 306 the window has passed.
        let a = p.acquire(GpuId(9), SimTime::from_secs(306));
        assert_eq!(a.kind, AcquireKind::ColdElastic);
    }

    #[test]
    fn always_on_release_does_not_enter_warm() {
        let mut p = provisioner();
        p.acquire(GpuId(0), SimTime::from_secs(0));
        p.release(GpuId(0), SimTime::from_secs(1));
        assert_eq!(p.warm_gpus().count(), 0);
        // Re-acquiring is still instant because it is pinned.
        let a = p.acquire(GpuId(0), SimTime::from_secs(2));
        assert_eq!(a.kind, AcquireKind::AlwaysOn);
    }

    #[test]
    fn evict_removes_every_tier_membership() {
        let mut p = provisioner();
        // Pinned GPU: eviction un-pins it.
        p.acquire(GpuId(0), SimTime::from_secs(0));
        p.evict(GpuId(0));
        assert!(!p.is_in_use(GpuId(0)));
        let a = p.acquire(GpuId(0), SimTime::from_secs(1));
        assert_eq!(a.kind, AcquireKind::ColdElastic);
        // Warm elastic GPU: eviction forfeits the warm window.
        p.acquire(GpuId(9), SimTime::from_secs(2));
        p.release(GpuId(9), SimTime::from_secs(3));
        p.evict(GpuId(9));
        let a = p.acquire(GpuId(9), SimTime::from_secs(4));
        assert_eq!(a.kind, AcquireKind::ColdElastic);
    }

    #[test]
    fn first_fit_respects_constraints() {
        let mut cluster = Cluster::new(ClusterSpec::paper_testbed());
        let cap = cluster.gpu_mem_capacity();
        // Server 0 hosts GPUs 0 and 1. Fill GPU 0 completely.
        cluster.set_background(GpuId(0), cap, 0.9, 3);
        let got = first_fit(&cluster, 3, cap / 2, true, &[GpuId(1)]).unwrap();
        assert_eq!(got.len(), 3);
        assert!(!got.contains(&GpuId(0)), "full GPU chosen");
        assert!(!got.contains(&GpuId(1)), "excluded GPU chosen");
        // Distinct servers.
        let topo = cluster.topology();
        let mut servers: Vec<_> = got.iter().map(|&g| topo.gpu(g).server).collect();
        servers.dedup();
        assert_eq!(servers.len(), 3);
    }

    #[test]
    fn first_fit_returns_none_when_infeasible() {
        let mut cluster = Cluster::new(ClusterSpec::paper_testbed());
        let cap = cluster.gpu_mem_capacity();
        for info in cluster.topology().gpus().to_vec() {
            cluster.set_background(info.id, cap, 0.9, 3);
        }
        assert!(first_fit(&cluster, 1, 1, false, &[]).is_none());
    }
}
