//! Background-tenant fragmentation model.
//!
//! §3.1 of the paper measures two production clusters for two weeks and
//! finds: 216% average GPU subscription, mean SM utilisation of 17–24% with
//! P95 above 80%, memory utilisation with P50 of 29–54% and P95 ≈ 99%, an
//! 8.7% probability of finding a single GPU with >85% free memory, and a
//! 0.02% probability of co-locating four such GPUs on one server.
//!
//! This module reproduces those statistics with a per-GPU mixture model:
//! each GPU independently draws an *activity profile* (idle / light / busy /
//! saturated) determining correlated memory and SM occupancy plus a
//! subscription count. Profiles are resampled on exponential churn timers,
//! giving the "ephemeral availability" the paper highlights.

use serde::{Deserialize, Serialize};

use flexpipe_sim::{SimDuration, SimRng};

use crate::state::Cluster;
use crate::topology::GpuId;

/// Weights and ranges of the four activity classes.
///
/// Each class draws memory fraction and SM fraction uniformly from its
/// range; class choice is shared between the two so that memory-busy GPUs
/// also tend to be compute-busy (as in real fleets).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundProfile {
    /// Probability of each memory class: idle, light, busy, saturated.
    pub weights: [f64; 4],
    /// Probability of each SM class. Kept separate from `weights` because
    /// production GPUs are frequently memory-full but compute-idle (models
    /// resident, few requests); Table 1 shows memory means roughly 2x the
    /// SM means.
    pub sm_weights: [f64; 4],
    /// Memory-fraction range per class.
    pub mem_ranges: [(f64, f64); 4],
    /// SM-fraction range per class.
    pub sm_ranges: [(f64, f64); 4],
    /// Mean services subscribed per GPU (drives the subscription rate).
    pub mean_services: f64,
    /// Mean time between occupancy resamples for one GPU.
    pub churn_mean: SimDuration,
}

impl BackgroundProfile {
    /// Calibrated to Table 1's inference-only cluster C1
    /// (SM mean 16.9 / P50 9.2 / P95 80.5; mem mean 43.5 / P50 28.8 /
    /// P95 99.1; 38% of GPUs in the 10–30% memory bucket).
    pub fn c1_like() -> Self {
        BackgroundProfile {
            weights: [0.18, 0.38, 0.26, 0.18],
            sm_weights: [0.52, 0.32, 0.10, 0.06],
            mem_ranges: [(0.01, 0.10), (0.10, 0.30), (0.30, 0.85), (0.95, 1.0)],
            sm_ranges: [(0.0, 0.08), (0.05, 0.25), (0.25, 0.70), (0.70, 1.0)],
            mean_services: 2.16,
            churn_mean: SimDuration::from_secs(600),
        }
    }

    /// Calibrated to Table 1's hybrid training/inference cluster C2
    /// (SM mean 23.7 / P50 10.9 / P95 85.4; mem mean 50.9 / P50 53.7 /
    /// P95 99.3; 18% of GPUs in the 10–30% memory bucket).
    pub fn c2_like() -> Self {
        BackgroundProfile {
            weights: [0.12, 0.18, 0.50, 0.20],
            sm_weights: [0.48, 0.27, 0.15, 0.10],
            mem_ranges: [(0.01, 0.10), (0.10, 0.30), (0.30, 0.85), (0.95, 1.0)],
            sm_ranges: [(0.0, 0.08), (0.05, 0.30), (0.25, 0.75), (0.75, 1.0)],
            mean_services: 2.16,
            churn_mean: SimDuration::from_secs(600),
        }
    }

    /// A lighter profile for the 42-server evaluation testbed, leaving room
    /// for the serving system under test while still fragmenting placement.
    pub fn testbed_like() -> Self {
        BackgroundProfile {
            weights: [0.40, 0.35, 0.20, 0.05],
            sm_weights: [0.55, 0.30, 0.12, 0.03],
            mem_ranges: [(0.0, 0.05), (0.05, 0.25), (0.25, 0.60), (0.85, 0.95)],
            sm_ranges: [(0.0, 0.05), (0.05, 0.20), (0.20, 0.60), (0.60, 0.95)],
            mean_services: 1.2,
            churn_mean: SimDuration::from_secs(300),
        }
    }

    /// No background load at all (for isolation experiments and tests).
    pub fn none() -> Self {
        BackgroundProfile {
            weights: [1.0, 0.0, 0.0, 0.0],
            sm_weights: [1.0, 0.0, 0.0, 0.0],
            mem_ranges: [(0.0, 0.0); 4],
            sm_ranges: [(0.0, 0.0); 4],
            mean_services: 0.0,
            churn_mean: SimDuration::from_secs(3600),
        }
    }

    fn class_at(weights: &[f64; 4], u: f64) -> usize {
        let total: f64 = weights.iter().sum();
        let mut x = u * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        3
    }

    fn sample_uniform(range: (f64, f64), rng: &mut SimRng) -> f64 {
        range.0 + (range.1 - range.0) * rng.f64()
    }

    fn sample_poisson(&self, mean: f64, rng: &mut SimRng) -> u32 {
        if mean <= 0.0 {
            return 0;
        }
        // Knuth's method is fine for small means (≈2.16).
        let l = (-mean).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= rng.f64();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 1000 {
                return k;
            }
        }
    }
}

/// Snapshot statistics of background occupancy (Table 1 / Fig. 2 shapes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FragmentationStats {
    /// Mean SM utilisation, percent.
    pub sm_mean: f64,
    /// Median SM utilisation, percent.
    pub sm_p50: f64,
    /// P95 SM utilisation, percent.
    pub sm_p95: f64,
    /// Fraction of GPUs with SM utilisation in `[10%, 30%)`.
    pub sm_frac_10_30: f64,
    /// Mean memory utilisation, percent.
    pub mem_mean: f64,
    /// Median memory utilisation, percent.
    pub mem_p50: f64,
    /// P95 memory utilisation, percent.
    pub mem_p95: f64,
    /// Fraction of GPUs with memory utilisation in `[10%, 30%)`.
    pub mem_frac_10_30: f64,
    /// Average services per GPU × 100 (the paper's "subscription rate").
    pub subscription_pct: f64,
    /// Fraction of GPUs with more than 85% free memory ("securable").
    pub p_single_free: f64,
    /// Fraction of servers that could co-locate 4 securable GPUs.
    pub p_colocate4: f64,
}

/// The background tenant process driving fragmentation.
#[derive(Debug, Clone)]
pub struct BackgroundTenants {
    profile: BackgroundProfile,
    rng: SimRng,
}

impl BackgroundTenants {
    /// Creates the process with its own random stream.
    pub fn new(profile: BackgroundProfile, rng: SimRng) -> Self {
        BackgroundTenants { profile, rng }
    }

    /// The configured profile.
    pub fn profile(&self) -> &BackgroundProfile {
        &self.profile
    }

    /// Populates every GPU with an initial occupancy sample.
    pub fn populate(&mut self, cluster: &mut Cluster) {
        let ids: Vec<GpuId> = cluster.topology().gpus().iter().map(|g| g.id).collect();
        for gpu in ids {
            self.resample(cluster, gpu);
        }
    }

    /// Resamples one GPU's background occupancy (a churn event).
    ///
    /// Memory and SM classes are drawn through a shared-uniform copula: half
    /// the time the SM class reuses the memory draw's uniform, creating rank
    /// correlation while preserving both marginal distributions exactly.
    pub fn resample(&mut self, cluster: &mut Cluster, gpu: GpuId) {
        let u = self.rng.f64();
        let class = BackgroundProfile::class_at(&self.profile.weights, u);
        let mem_frac =
            BackgroundProfile::sample_uniform(self.profile.mem_ranges[class], &mut self.rng);
        let v = if self.rng.chance(0.5) {
            u
        } else {
            self.rng.f64()
        };
        let sm_class = BackgroundProfile::class_at(&self.profile.sm_weights, v);
        let sm_frac =
            BackgroundProfile::sample_uniform(self.profile.sm_ranges[sm_class], &mut self.rng);
        let services = self
            .profile
            .sample_poisson(self.profile.mean_services, &mut self.rng);
        let cap = cluster.gpu_mem_capacity();
        cluster.set_background(gpu, (mem_frac * cap as f64) as u64, sm_frac, services);
    }

    /// Draws the next churn delay for a single GPU.
    pub fn next_churn(&mut self) -> SimDuration {
        let mean = self.profile.churn_mean.as_secs_f64();
        let u = self.rng.f64().max(1e-12);
        SimDuration::from_secs_f64(-mean * u.ln())
    }

    /// Applies one churn step: resamples each GPU independently with
    /// probability `dt / churn_mean` (first-order approximation suitable
    /// for coarse stepping).
    pub fn step(&mut self, cluster: &mut Cluster, dt: SimDuration) {
        let p = (dt.as_secs_f64() / self.profile.churn_mean.as_secs_f64()).min(1.0);
        let ids: Vec<GpuId> = cluster.topology().gpus().iter().map(|g| g.id).collect();
        for gpu in ids {
            if self.rng.chance(p) {
                self.resample(cluster, gpu);
            }
        }
    }

    /// Computes fragmentation statistics over the current snapshot.
    pub fn stats(cluster: &Cluster) -> FragmentationStats {
        let cap = cluster.gpu_mem_capacity() as f64;
        let mut mem = Vec::new();
        let mut sm = Vec::new();
        let mut services_total = 0u64;
        let mut securable = vec![false; cluster.topology().gpu_count()];
        for info in cluster.topology().gpus() {
            let l = cluster.load(info.id);
            let mem_frac = l.bg_mem as f64 / cap;
            mem.push(mem_frac * 100.0);
            sm.push(l.bg_sm * 100.0);
            services_total += u64::from(l.bg_services);
            // "Securable": >85% memory free, light compute, ≤1 subscriber —
            // the conditions under which the scheduler could actually hand
            // this GPU to a new tenant (§3.1).
            securable[info.id.0 as usize] =
                (1.0 - mem_frac) > 0.85 && l.bg_sm < 0.30 && l.bg_services <= 1;
        }
        let n = mem.len().max(1) as f64;
        let pct = |xs: &mut Vec<f64>, q: f64| -> f64 {
            if xs.is_empty() {
                return 0.0;
            }
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let idx = ((xs.len() - 1) as f64 * q).round() as usize;
            xs[idx]
        };
        let frac_in = |xs: &[f64], lo: f64, hi: f64| {
            xs.iter().filter(|&&x| x >= lo && x < hi).count() as f64 / n
        };
        let mem_mean = mem.iter().sum::<f64>() / n;
        let sm_mean = sm.iter().sum::<f64>() / n;
        let mem_frac_10_30 = frac_in(&mem, 10.0, 30.0);
        let sm_frac_10_30 = frac_in(&sm, 10.0, 30.0);

        // Co-location: fraction of servers with ≥4 simultaneously securable GPUs.
        let mut colocate = 0usize;
        let server_count = cluster.topology().server_count();
        for s in 0..server_count {
            let free = cluster
                .topology()
                .gpus_on(crate::topology::ServerId(s as u32))
                .iter()
                .filter(|g| securable[g.0 as usize])
                .count();
            if free >= 4 {
                colocate += 1;
            }
        }
        let p_single_free = securable.iter().filter(|&&b| b).count() as f64 / n;

        let mut mem_sorted = mem.clone();
        let mut sm_sorted = sm.clone();
        FragmentationStats {
            sm_mean,
            sm_p50: pct(&mut sm_sorted, 0.50),
            sm_p95: pct(&mut sm_sorted, 0.95),
            sm_frac_10_30,
            mem_mean,
            mem_p50: pct(&mut mem_sorted, 0.50),
            mem_p95: pct(&mut mem_sorted, 0.95),
            mem_frac_10_30,
            subscription_pct: services_total as f64 / n * 100.0,
            p_single_free,
            p_colocate4: colocate as f64 / server_count.max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClusterSpec;

    fn stats_for(profile: BackgroundProfile, spec: ClusterSpec, seed: u64) -> FragmentationStats {
        let mut cluster = Cluster::new(spec);
        let mut bg = BackgroundTenants::new(profile, SimRng::seed(seed));
        bg.populate(&mut cluster);
        BackgroundTenants::stats(&cluster)
    }

    #[test]
    fn c1_profile_lands_in_table1_bands() {
        // Average over several snapshots to smooth the 468-GPU sample.
        let mut acc = FragmentationStats::default();
        let runs = 8;
        for seed in 0..runs {
            let s = stats_for(
                BackgroundProfile::c1_like(),
                ClusterSpec::alibaba_c1(),
                seed,
            );
            acc.sm_mean += s.sm_mean / runs as f64;
            acc.mem_mean += s.mem_mean / runs as f64;
            acc.mem_p95 += s.mem_p95 / runs as f64;
            acc.mem_frac_10_30 += s.mem_frac_10_30 / runs as f64;
            acc.subscription_pct += s.subscription_pct / runs as f64;
            acc.p_single_free += s.p_single_free / runs as f64;
        }
        // Table 1 C1: SM mean 16.91, mem mean 43.48, mem P95 99.09,
        // 10-30% bucket 38.44%, subscription 216%, single-free 8.7%.
        assert!(
            (10.0..25.0).contains(&acc.sm_mean),
            "sm mean {}",
            acc.sm_mean
        );
        assert!(
            (35.0..50.0).contains(&acc.mem_mean),
            "mem mean {}",
            acc.mem_mean
        );
        assert!(acc.mem_p95 > 90.0, "mem p95 {}", acc.mem_p95);
        assert!(
            (0.30..0.46).contains(&acc.mem_frac_10_30),
            "10-30 bucket {}",
            acc.mem_frac_10_30
        );
        assert!(
            (190.0..240.0).contains(&acc.subscription_pct),
            "subscription {}",
            acc.subscription_pct
        );
        assert!(
            (0.02..0.15).contains(&acc.p_single_free),
            "p_single_free {}",
            acc.p_single_free
        );
    }

    #[test]
    fn c2_profile_shifts_toward_busier_cluster() {
        let c1 = stats_for(BackgroundProfile::c1_like(), ClusterSpec::alibaba_c2(), 1);
        let c2 = stats_for(BackgroundProfile::c2_like(), ClusterSpec::alibaba_c2(), 1);
        assert!(c2.mem_mean > c1.mem_mean, "C2 should be busier");
        assert!(c2.mem_p50 > c1.mem_p50);
        assert!(c2.mem_frac_10_30 < c1.mem_frac_10_30);
    }

    #[test]
    fn colocation_probability_is_tiny() {
        let s = stats_for(BackgroundProfile::c2_like(), ClusterSpec::alibaba_c2(), 3);
        // Paper: 0.02%. Anything below 1% demonstrates the fragmentation
        // argument; exact value recorded in EXPERIMENTS.md.
        assert!(s.p_colocate4 < 0.01, "colocate4 {}", s.p_colocate4);
        assert!(s.p_colocate4 < s.p_single_free);
    }

    #[test]
    fn none_profile_leaves_cluster_idle() {
        let s = stats_for(BackgroundProfile::none(), ClusterSpec::paper_testbed(), 9);
        assert_eq!(s.mem_mean, 0.0);
        assert_eq!(s.subscription_pct, 0.0);
        assert_eq!(s.p_single_free, 1.0);
    }

    #[test]
    fn churn_changes_occupancy_over_time() {
        let mut cluster = Cluster::new(ClusterSpec::paper_testbed());
        let mut bg = BackgroundTenants::new(BackgroundProfile::c1_like(), SimRng::seed(4));
        bg.populate(&mut cluster);
        let before: Vec<u64> = cluster
            .topology()
            .gpus()
            .iter()
            .map(|g| cluster.load(g.id).bg_mem)
            .collect();
        bg.step(&mut cluster, SimDuration::from_secs(600));
        let after: Vec<u64> = cluster
            .topology()
            .gpus()
            .iter()
            .map(|g| cluster.load(g.id).bg_mem)
            .collect();
        let changed = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(changed > 10, "only {changed} GPUs churned");
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn churn_respects_serving_leases() {
        let mut cluster = Cluster::new(ClusterSpec::paper_testbed());
        let cap = cluster.gpu_mem_capacity();
        let lease = cluster.reserve_gpu(GpuId(0), cap * 3 / 4).unwrap();
        let mut bg = BackgroundTenants::new(BackgroundProfile::c2_like(), SimRng::seed(7));
        for _ in 0..50 {
            bg.step(&mut cluster, SimDuration::from_secs(600));
            cluster.check_invariants().unwrap();
        }
        assert!(cluster.lease(lease).is_some());
        assert!(cluster.load(GpuId(0)).bg_mem <= cap / 4);
    }
}
