//! Dynamic cluster state: per-GPU memory commitments and leases.
//!
//! Two kinds of occupants compete for each GPU: *background tenants* (other
//! services in the multi-tenant cluster, driven by
//! [`crate::fragmentation::BackgroundTenants`]) and *serving leases* taken
//! out by the LLM serving system under test. The cluster enforces that the
//! sum never exceeds capacity — the central invariant the property tests
//! pin down.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::load_index::ServerLoadIndex;
use crate::topology::{ClusterSpec, GpuId, ServerId, Topology};

/// Identifier of a memory lease on a GPU or host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LeaseId(pub u64);

/// Why an allocation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough free memory on the target device.
    InsufficientMemory {
        /// Requested bytes.
        requested: u64,
        /// Bytes actually free.
        free: u64,
    },
    /// The lease id is unknown (double release or corruption).
    UnknownLease(LeaseId),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::InsufficientMemory { requested, free } => write!(
                f,
                "insufficient memory: requested {requested} bytes, {free} free"
            ),
            AllocError::UnknownLease(id) => write!(f, "unknown lease {id:?}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Dynamic state of one GPU.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct GpuLoad {
    /// Bytes committed by background tenants.
    pub bg_mem: u64,
    /// Bytes committed by serving leases.
    pub serving_mem: u64,
    /// Background streaming-multiprocessor utilisation fraction `[0, 1]`.
    pub bg_sm: f64,
    /// Number of background services subscribed to this GPU.
    pub bg_services: u32,
}

/// A memory lease record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lease {
    /// Device holding the memory.
    pub target: LeaseTarget,
    /// Leased bytes.
    pub bytes: u64,
}

/// What a lease is held against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseTarget {
    /// GPU device memory.
    Gpu(GpuId),
    /// Server host DRAM (used by the parameter cache tier).
    Host(ServerId),
}

/// The live cluster: topology plus all dynamic occupancy state.
#[derive(Debug, Clone)]
pub struct Cluster {
    topo: Topology,
    loads: Vec<GpuLoad>,
    host_used: Vec<u64>,
    leases: HashMap<LeaseId, Lease>,
    next_lease: u64,
    /// Revoked devices (spot preemption / hardware failure): excluded from
    /// every capacity query until restored.
    revoked: Vec<bool>,
    /// Servers whose host memory tier is revoked (whole-server preemption).
    revoked_hosts: Vec<bool>,
    /// Busiest-first server ranking by serving-leased bytes, maintained on
    /// every serving-lease change and GPU revoke/restore (the load-change
    /// hook behind the serving engine's indexed `hottest_server`).
    server_index: ServerLoadIndex,
}

impl Cluster {
    /// Builds an idle cluster from a spec.
    pub fn new(spec: ClusterSpec) -> Self {
        let topo = Topology::new(spec);
        let n = topo.gpu_count();
        let s = topo.server_count();
        let gpus_per_server: Vec<u32> = (0..s as u32)
            .map(|i| topo.gpus_on(ServerId(i)).len() as u32)
            .collect();
        Cluster {
            topo,
            loads: vec![GpuLoad::default(); n],
            host_used: vec![0; s],
            leases: HashMap::new(),
            next_lease: 0,
            revoked: vec![false; n],
            revoked_hosts: vec![false; s],
            server_index: ServerLoadIndex::new(&gpus_per_server),
        }
    }

    /// The materialised topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// GPU memory capacity in bytes (uniform across the cluster).
    pub fn gpu_mem_capacity(&self) -> u64 {
        self.topo.spec().gpu.mem_bytes
    }

    /// Current load of `gpu`.
    pub fn load(&self, gpu: GpuId) -> GpuLoad {
        self.loads[gpu.0 as usize]
    }

    /// Free device memory on `gpu` in bytes (0 while revoked).
    pub fn free_mem(&self, gpu: GpuId) -> u64 {
        if self.revoked[gpu.0 as usize] {
            return 0;
        }
        let l = self.loads[gpu.0 as usize];
        self.gpu_mem_capacity()
            .saturating_sub(l.bg_mem + l.serving_mem)
    }

    /// Free fraction of device memory on `gpu`.
    pub fn free_frac(&self, gpu: GpuId) -> f64 {
        self.free_mem(gpu) as f64 / self.gpu_mem_capacity() as f64
    }

    /// Free host DRAM on `server` in bytes (0 while the host is revoked).
    pub fn free_host_mem(&self, server: ServerId) -> u64 {
        if self.revoked_hosts[server.0 as usize] {
            return 0;
        }
        self.topo
            .host_mem(server)
            .saturating_sub(self.host_used[server.0 as usize])
    }

    /// Overwrites the background occupancy of `gpu` (fragmentation driver).
    ///
    /// Background demand is clamped so `bg_mem + serving_mem ≤ capacity`:
    /// in a real cluster the scheduler would simply not have admitted the
    /// tenant, and serving leases must never be invalidated retroactively.
    pub fn set_background(&mut self, gpu: GpuId, mem: u64, sm: f64, services: u32) {
        if self.revoked[gpu.0 as usize] {
            // A revoked device hosts nobody; churn resumes after restore.
            return;
        }
        let cap = self.gpu_mem_capacity();
        let l = &mut self.loads[gpu.0 as usize];
        l.bg_mem = mem.min(cap.saturating_sub(l.serving_mem));
        l.bg_sm = sm.clamp(0.0, 1.0);
        l.bg_services = services;
    }

    /// Takes a serving lease of `bytes` on `gpu`. Revoked devices refuse
    /// every reservation (their free memory reads 0).
    pub fn reserve_gpu(&mut self, gpu: GpuId, bytes: u64) -> Result<LeaseId, AllocError> {
        let free = self.free_mem(gpu);
        if bytes > free || self.revoked[gpu.0 as usize] {
            return Err(AllocError::InsufficientMemory {
                requested: bytes,
                free,
            });
        }
        self.loads[gpu.0 as usize].serving_mem += bytes;
        self.server_index
            .on_reserve(self.topo.gpu(gpu).server, bytes);
        Ok(self.record(Lease {
            target: LeaseTarget::Gpu(gpu),
            bytes,
        }))
    }

    /// Takes a host-memory lease of `bytes` on `server`. Revoked hosts
    /// refuse every reservation.
    pub fn reserve_host(&mut self, server: ServerId, bytes: u64) -> Result<LeaseId, AllocError> {
        let free = self.free_host_mem(server);
        if bytes > free || self.revoked_hosts[server.0 as usize] {
            return Err(AllocError::InsufficientMemory {
                requested: bytes,
                free,
            });
        }
        self.host_used[server.0 as usize] += bytes;
        Ok(self.record(Lease {
            target: LeaseTarget::Host(server),
            bytes,
        }))
    }

    fn record(&mut self, lease: Lease) -> LeaseId {
        let id = LeaseId(self.next_lease);
        self.next_lease += 1;
        self.leases.insert(id, lease);
        id
    }

    /// Releases a lease, returning its record.
    pub fn release(&mut self, id: LeaseId) -> Result<Lease, AllocError> {
        let lease = self
            .leases
            .remove(&id)
            .ok_or(AllocError::UnknownLease(id))?;
        match lease.target {
            LeaseTarget::Gpu(gpu) => {
                let l = &mut self.loads[gpu.0 as usize];
                debug_assert!(l.serving_mem >= lease.bytes);
                l.serving_mem = l.serving_mem.saturating_sub(lease.bytes);
                self.server_index
                    .on_release(self.topo.gpu(gpu).server, lease.bytes);
            }
            LeaseTarget::Host(server) => {
                let used = &mut self.host_used[server.0 as usize];
                debug_assert!(*used >= lease.bytes);
                *used = used.saturating_sub(lease.bytes);
            }
        }
        Ok(lease)
    }

    /// Looks up a live lease.
    pub fn lease(&self, id: LeaseId) -> Option<Lease> {
        self.leases.get(&id).copied()
    }

    /// Number of live leases.
    pub fn lease_count(&self) -> usize {
        self.leases.len()
    }

    /// Iterates over GPU ids whose free memory is at least `min_free`
    /// bytes; revoked devices are never yielded.
    pub fn gpus_with_free(&self, min_free: u64) -> impl Iterator<Item = GpuId> + '_ {
        self.topo
            .gpus()
            .iter()
            .map(|g| g.id)
            .filter(move |&g| !self.is_revoked(g) && self.free_mem(g) >= min_free)
    }

    /// Whether `gpu` is currently revoked.
    pub fn is_revoked(&self, gpu: GpuId) -> bool {
        self.revoked[gpu.0 as usize]
    }

    /// Whether `server`'s host memory tier is currently revoked.
    pub fn is_host_revoked(&self, server: ServerId) -> bool {
        self.revoked_hosts[server.0 as usize]
    }

    /// Currently revoked GPUs, in id order.
    pub fn revoked_gpus(&self) -> Vec<GpuId> {
        self.revoked
            .iter()
            .enumerate()
            .filter(|(_, &r)| r)
            .map(|(i, _)| GpuId(i as u32))
            .collect()
    }

    /// Revokes `gpu`: the device leaves the cluster's usable pool, its
    /// background occupancy vanishes with it, and every serving lease it
    /// backs is invalidated. Returns the invalidated lease ids (in id
    /// order) so the serving layer can reconcile its stage bookkeeping.
    /// Idempotent: revoking a revoked device returns an empty list.
    pub fn revoke_gpu(&mut self, gpu: GpuId) -> Vec<LeaseId> {
        let i = gpu.0 as usize;
        if self.revoked[i] {
            return Vec::new();
        }
        self.revoked[i] = true;
        let mut dead: Vec<LeaseId> = self
            .leases
            .iter()
            .filter(|(_, l)| l.target == LeaseTarget::Gpu(gpu))
            .map(|(&id, _)| id)
            .collect();
        dead.sort_unstable();
        for id in &dead {
            self.leases.remove(id);
        }
        // The GPU's invalidated serving bytes leave the server ranking with
        // it; the last GPU of a server takes the server out entirely.
        self.server_index
            .on_gpu_revoked(self.topo.gpu(gpu).server, self.loads[i].serving_mem);
        self.loads[i] = GpuLoad::default();
        dead
    }

    /// Revokes `server`'s host memory tier, invalidating every host lease
    /// on it. Returns the invalidated lease ids in id order. The server's
    /// GPUs are revoked separately (callers decide the blast radius).
    pub fn revoke_host(&mut self, server: ServerId) -> Vec<LeaseId> {
        let i = server.0 as usize;
        if self.revoked_hosts[i] {
            return Vec::new();
        }
        self.revoked_hosts[i] = true;
        let mut dead: Vec<LeaseId> = self
            .leases
            .iter()
            .filter(|(_, l)| l.target == LeaseTarget::Host(server))
            .map(|(&id, _)| id)
            .collect();
        dead.sort_unstable();
        for id in &dead {
            self.leases.remove(id);
        }
        self.host_used[i] = 0;
        dead
    }

    /// Restores a revoked GPU to the usable pool (empty: background
    /// tenants re-populate on the next churn step). Restoring any GPU of a
    /// host-revoked server brings the host memory tier back with it.
    pub fn restore_gpu(&mut self, gpu: GpuId) {
        let i = gpu.0 as usize;
        if !self.revoked[i] {
            return;
        }
        self.revoked[i] = false;
        let server = self.topo.gpu(gpu).server;
        self.revoked_hosts[server.0 as usize] = false;
        self.server_index.on_gpu_restored(server);
    }

    /// Serving-leased bytes currently held across `server`'s GPUs
    /// (incrementally maintained; equals summing `load(g).serving_mem`).
    pub fn server_serving_bytes(&self, server: ServerId) -> u64 {
        self.server_index.server_bytes(server)
    }

    /// The `rank`-th busiest server by serving-leased bytes (0 = busiest,
    /// ties toward the lowest id), skipping fully revoked servers — the
    /// indexed equivalent of rebuilding and sorting the server list, in
    /// O(rank + log servers) per query.
    pub fn nth_hottest_server(&self, rank: u32) -> Option<ServerId> {
        self.server_index.nth_hottest(rank)
    }

    /// Verifies the capacity invariant on every device; used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let cap = self.gpu_mem_capacity();
        for (i, l) in self.loads.iter().enumerate() {
            if self.revoked[i] && (l.bg_mem != 0 || l.serving_mem != 0) {
                return Err(format!("revoked gpu {i} still carries occupancy"));
            }
            if l.bg_mem + l.serving_mem > cap {
                return Err(format!(
                    "gpu {i}: bg {} + serving {} exceeds capacity {cap}",
                    l.bg_mem, l.serving_mem
                ));
            }
        }
        for (s, &used) in self.host_used.iter().enumerate() {
            let cap = self.topo.host_mem(ServerId(s as u32));
            if used > cap {
                return Err(format!("server {s}: host used {used} exceeds {cap}"));
            }
        }
        // Lease ledger must reconcile with per-device sums.
        let mut per_gpu = vec![0u64; self.loads.len()];
        let mut per_host = vec![0u64; self.host_used.len()];
        for lease in self.leases.values() {
            match lease.target {
                LeaseTarget::Gpu(g) => {
                    if self.revoked[g.0 as usize] {
                        return Err(format!("lease survives on revoked gpu {}", g.0));
                    }
                    per_gpu[g.0 as usize] += lease.bytes;
                }
                LeaseTarget::Host(s) => {
                    if self.revoked_hosts[s.0 as usize] {
                        return Err(format!("lease survives on revoked host {}", s.0));
                    }
                    per_host[s.0 as usize] += lease.bytes;
                }
            }
        }
        for (i, l) in self.loads.iter().enumerate() {
            if per_gpu[i] != l.serving_mem {
                return Err(format!(
                    "gpu {i}: lease ledger {} != serving_mem {}",
                    per_gpu[i], l.serving_mem
                ));
            }
        }
        for (s, &used) in self.host_used.iter().enumerate() {
            if per_host[s] != used {
                return Err(format!("server {s}: ledger {} != used {used}", per_host[s]));
            }
        }
        // The server-load index must mirror a fresh rebuild: per-server
        // byte totals, membership (≥1 non-revoked GPU) and the
        // busiest-first order itself.
        let mut want: Vec<(ServerId, u64)> = Vec::new();
        for s in 0..self.topo.server_count() as u32 {
            let server = ServerId(s);
            let gpus = self.topo.gpus_on(server);
            let bytes: u64 = gpus
                .iter()
                .map(|&g| self.loads[g.0 as usize].serving_mem)
                .sum();
            if self.server_index.server_bytes(server) != bytes {
                return Err(format!(
                    "server {s}: load index holds {} bytes, GPUs sum to {bytes}",
                    self.server_index.server_bytes(server)
                ));
            }
            if gpus.iter().any(|&g| !self.revoked[g.0 as usize]) {
                want.push((server, bytes));
            }
        }
        want.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let got: Vec<(ServerId, u64)> = self.server_index.ranking().collect();
        if got != want {
            return Err(format!("server ranking diverged: {got:?} vs {want:?}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cluster {
        Cluster::new(ClusterSpec::paper_testbed())
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let mut c = small();
        let g = GpuId(0);
        let cap = c.gpu_mem_capacity();
        let lease = c.reserve_gpu(g, cap / 2).unwrap();
        assert_eq!(c.free_mem(g), cap - cap / 2);
        c.release(lease).unwrap();
        assert_eq!(c.free_mem(g), cap);
        c.check_invariants().unwrap();
    }

    #[test]
    fn over_reservation_is_refused() {
        let mut c = small();
        let g = GpuId(3);
        let cap = c.gpu_mem_capacity();
        c.reserve_gpu(g, cap - 100).unwrap();
        let err = c.reserve_gpu(g, 200).unwrap_err();
        assert!(matches!(
            err,
            AllocError::InsufficientMemory { free: 100, .. }
        ));
        c.check_invariants().unwrap();
    }

    #[test]
    fn double_release_fails() {
        let mut c = small();
        let lease = c.reserve_gpu(GpuId(1), 1024).unwrap();
        c.release(lease).unwrap();
        assert!(matches!(c.release(lease), Err(AllocError::UnknownLease(_))));
    }

    #[test]
    fn background_never_displaces_serving() {
        let mut c = small();
        let g = GpuId(2);
        let cap = c.gpu_mem_capacity();
        c.reserve_gpu(g, cap / 2).unwrap();
        // Background demand exceeding remaining capacity is clamped.
        c.set_background(g, cap, 0.5, 3);
        assert_eq!(c.load(g).bg_mem, cap / 2);
        assert_eq!(c.free_mem(g), 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn host_memory_is_per_server() {
        let mut c = small();
        let s = ServerId(0);
        let cap = c.topology().host_mem(s);
        let l = c.reserve_host(s, cap).unwrap();
        assert_eq!(c.free_host_mem(s), 0);
        assert!(c.reserve_host(s, 1).is_err());
        // Other servers unaffected.
        assert_eq!(c.free_host_mem(ServerId(1)), cap);
        c.release(l).unwrap();
        c.check_invariants().unwrap();
    }

    #[test]
    fn revoke_invalidates_leases_and_blocks_reservation() {
        let mut c = small();
        let g = GpuId(1);
        let l1 = c.reserve_gpu(g, 1024).unwrap();
        let l2 = c.reserve_gpu(g, 2048).unwrap();
        c.set_background(g, 4096, 0.4, 2);
        let dead = c.revoke_gpu(g);
        assert_eq!(dead, vec![l1, l2]);
        assert!(c.is_revoked(g));
        assert_eq!(c.free_mem(g), 0);
        assert_eq!(c.load(g).bg_mem, 0);
        assert!(c.reserve_gpu(g, 1).is_err());
        assert!(c.lease(l1).is_none(), "revoked lease must disappear");
        assert!(matches!(c.release(l1), Err(AllocError::UnknownLease(_))));
        // Background churn cannot repopulate a revoked device.
        c.set_background(g, 4096, 0.4, 2);
        assert_eq!(c.load(g).bg_mem, 0);
        c.check_invariants().unwrap();
        // Idempotent.
        assert!(c.revoke_gpu(g).is_empty());
        assert_eq!(c.revoked_gpus(), vec![g]);
    }

    #[test]
    fn restore_returns_capacity() {
        let mut c = small();
        let g = GpuId(2);
        c.revoke_gpu(g);
        c.restore_gpu(g);
        assert!(!c.is_revoked(g));
        assert_eq!(c.free_mem(g), c.gpu_mem_capacity());
        let l = c.reserve_gpu(g, 1024).unwrap();
        c.release(l).unwrap();
        c.check_invariants().unwrap();
    }

    #[test]
    fn host_revocation_drops_cache_leases() {
        let mut c = small();
        let s = ServerId(0);
        let l = c.reserve_host(s, 1 << 30).unwrap();
        let dead = c.revoke_host(s);
        assert_eq!(dead, vec![l]);
        assert!(c.is_host_revoked(s));
        assert_eq!(c.free_host_mem(s), 0);
        assert!(c.reserve_host(s, 1).is_err());
        c.check_invariants().unwrap();
        // Restoring any GPU of the server brings the host tier back.
        let g = c.topology().gpus_on(s)[0];
        c.revoke_gpu(g);
        c.restore_gpu(g);
        assert!(!c.is_host_revoked(s));
        assert!(c.reserve_host(s, 1).is_ok());
    }

    #[test]
    fn hottest_server_ranking_tracks_leases_and_revocations() {
        let mut c = small();
        // Server 1 busiest, then server 0; ties (2 vs 3 at zero) break low.
        let g0 = c.topology().gpus_on(ServerId(0))[0];
        let g1 = c.topology().gpus_on(ServerId(1))[0];
        let l0 = c.reserve_gpu(g0, 1 << 20).unwrap();
        c.reserve_gpu(g1, 4 << 20).unwrap();
        assert_eq!(c.nth_hottest_server(0), Some(ServerId(1)));
        assert_eq!(c.nth_hottest_server(1), Some(ServerId(0)));
        assert_eq!(c.nth_hottest_server(2), Some(ServerId(2)));
        assert_eq!(c.server_serving_bytes(ServerId(1)), 4 << 20);
        c.check_invariants().unwrap();
        // Releasing server 0's lease drops it into the zero-load tie.
        c.release(l0).unwrap();
        assert_eq!(c.nth_hottest_server(1), Some(ServerId(0)));
        c.check_invariants().unwrap();
        // Fully revoking the busiest server removes it from the ranking.
        for g in c.topology().gpus_on(ServerId(1)).to_vec() {
            c.revoke_gpu(g);
        }
        assert_eq!(c.nth_hottest_server(0), Some(ServerId(0)));
        assert!((0..42)
            .filter_map(|r| c.nth_hottest_server(r))
            .all(|s| s != ServerId(1)));
        c.check_invariants().unwrap();
        // Restoring one GPU re-enters the server at zero load.
        c.restore_gpu(c.topology().gpus_on(ServerId(1))[0]);
        assert_eq!(c.server_serving_bytes(ServerId(1)), 0);
        assert!((0..42)
            .filter_map(|r| c.nth_hottest_server(r))
            .any(|s| s == ServerId(1)));
        c.check_invariants().unwrap();
    }

    #[test]
    fn gpus_with_free_excludes_revoked() {
        let mut c = small();
        c.revoke_gpu(GpuId(5));
        assert!(!c.gpus_with_free(0).any(|g| g == GpuId(5)));
    }

    #[test]
    fn gpus_with_free_filters() {
        let mut c = small();
        let cap = c.gpu_mem_capacity();
        c.set_background(GpuId(0), cap, 0.9, 4);
        let free: Vec<_> = c.gpus_with_free(cap / 2).collect();
        assert!(!free.contains(&GpuId(0)));
        assert_eq!(free.len(), c.topology().gpu_count() - 1);
    }
}
