//! Fragmented serverless GPU cluster model for the FlexPipe reproduction.
//!
//! The paper's environment — a multi-tenant serverless cluster whose GPUs
//! are scattered, oversubscribed and ephemerally available (§2.2, §3.1) —
//! is reproduced here in five pieces:
//!
//! - [`topology`] — racks, servers, GPUs and interconnect parameters, with
//!   constructors for the paper's 42-server/82-GPU testbed and the two
//!   Alibaba measurement clusters of Table 1;
//! - [`state`] — dynamic memory occupancy with leases and the
//!   "never over capacity" invariant;
//! - [`fragmentation`] — the calibrated background-tenant process that
//!   recreates Table 1's utilisation distributions and Fig. 2's scattered
//!   availability;
//! - [`alloc`] — dual-tier (always-on + elastic) provisioning with
//!   multi-second cold allocation delays and reclaim windows;
//! - [`transfer`] — the §8 hierarchical transfer cost model (NVLink / PCIe /
//!   RDMA / sendfile / storage).

#![warn(missing_docs)]

pub mod alloc;
pub mod fragmentation;
pub mod load_index;
pub mod state;
pub mod topology;
pub mod transfer;

pub use alloc::{first_fit, AcquireKind, Acquisition, Provisioner, TierConfig};
pub use fragmentation::{BackgroundProfile, BackgroundTenants, FragmentationStats};
pub use load_index::ServerLoadIndex;
pub use state::{AllocError, Cluster, GpuLoad, Lease, LeaseId, LeaseTarget};
pub use topology::{
    ClusterSpec, GpuId, GpuInfo, GpuSpec, LinkSpec, RackId, ServerId, ServerSpec, Topology,
};
pub use transfer::{Endpoint, Route, TransferEngine};
