//! Incrementally maintained server-load ordering.
//!
//! The serving engine's hot-server queries (adversarial preemption
//! targeting, placement heuristics) rank servers by *serving-leased
//! bytes*. The reference implementation rebuilds and sorts the full server
//! list per query — O(servers × GPUs) + a sort — which is fine at the
//! paper's 42 servers but not at the ROADMAP's 1000-server tier. The
//! [`ServerLoadIndex`] keeps an ordered set keyed on
//! `(Reverse(serving bytes), server id)`, updated by the [`crate::Cluster`]
//! on every serving-lease change (reserve, release, revoke, restore), so
//! the `rank`-th busiest server resolves in O(rank + log servers).
//!
//! Ordering contract: the naive reference sorts by bytes *descending* with
//! ties toward the lowest server id, and includes exactly the servers that
//! still have at least one non-revoked GPU. `Reverse(bytes)` ascending is
//! bytes descending; the id tie-break is the tuple's second field; and
//! membership tracks a per-server alive-GPU count — so the index
//! reproduces the naive ranking bit for bit, which is what makes the
//! indexed path a pure optimization.

use std::cmp::Reverse;
use std::collections::BTreeSet;

use crate::topology::ServerId;

/// Ordered index over servers by serving-leased bytes (descending, ties
/// toward the lowest id), excluding servers with no usable GPU.
#[derive(Debug, Clone, Default)]
pub struct ServerLoadIndex {
    /// `(Reverse(serving bytes), server)` — in-order iteration yields the
    /// busiest-first ranking the naive sort produces.
    set: BTreeSet<(Reverse<u64>, ServerId)>,
    /// Serving-leased bytes per server (the current index key).
    bytes: Vec<u64>,
    /// Non-revoked GPUs per server; a server is indexed iff this is > 0.
    alive_gpus: Vec<u32>,
}

impl ServerLoadIndex {
    /// Builds the index for servers with the given (all-alive) GPU counts
    /// and zero serving load.
    pub fn new(gpus_per_server: &[u32]) -> Self {
        let mut idx = ServerLoadIndex {
            set: BTreeSet::new(),
            bytes: vec![0; gpus_per_server.len()],
            alive_gpus: gpus_per_server.to_vec(),
        };
        for (s, &alive) in gpus_per_server.iter().enumerate() {
            if alive > 0 {
                idx.set.insert((Reverse(0), ServerId(s as u32)));
            }
        }
        idx
    }

    fn rekey(&mut self, server: ServerId, old_bytes: u64) {
        let s = server.0 as usize;
        if self.alive_gpus[s] > 0 {
            self.set.remove(&(Reverse(old_bytes), server));
            self.set.insert((Reverse(self.bytes[s]), server));
        }
    }

    /// A serving lease of `bytes` landed on `server`.
    pub fn on_reserve(&mut self, server: ServerId, bytes: u64) {
        let old = self.bytes[server.0 as usize];
        self.bytes[server.0 as usize] = old + bytes;
        self.rekey(server, old);
    }

    /// A serving lease of `bytes` left `server` (release or revocation).
    pub fn on_release(&mut self, server: ServerId, bytes: u64) {
        let old = self.bytes[server.0 as usize];
        debug_assert!(old >= bytes, "releasing more than the server holds");
        self.bytes[server.0 as usize] = old.saturating_sub(bytes);
        self.rekey(server, old);
    }

    /// One of `server`'s GPUs was revoked; `lease_bytes` of serving leases
    /// died with it. A server whose last GPU leaves drops out of the
    /// ranking entirely (the naive scan skips fully revoked servers).
    pub fn on_gpu_revoked(&mut self, server: ServerId, lease_bytes: u64) {
        let s = server.0 as usize;
        let old = self.bytes[s];
        self.bytes[s] = old.saturating_sub(lease_bytes);
        debug_assert!(self.alive_gpus[s] > 0, "revoking a GPU of a dead server");
        self.alive_gpus[s] = self.alive_gpus[s].saturating_sub(1);
        if self.alive_gpus[s] == 0 {
            self.set.remove(&(Reverse(old), server));
        } else {
            self.rekey(server, old);
        }
    }

    /// One of `server`'s GPUs was restored; a server coming back from
    /// fully-revoked re-enters the ranking (with the zero load revocation
    /// left it at).
    pub fn on_gpu_restored(&mut self, server: ServerId) {
        let s = server.0 as usize;
        self.alive_gpus[s] += 1;
        if self.alive_gpus[s] == 1 {
            self.set.insert((Reverse(self.bytes[s]), server));
        }
    }

    /// The `rank`-th busiest server (0 = busiest), exactly matching the
    /// naive rebuild-and-sort reference.
    pub fn nth_hottest(&self, rank: u32) -> Option<ServerId> {
        self.set.iter().nth(rank as usize).map(|&(_, s)| s)
    }

    /// Serving-leased bytes currently attributed to `server`.
    pub fn server_bytes(&self, server: ServerId) -> u64 {
        self.bytes[server.0 as usize]
    }

    /// Number of ranked (not fully revoked) servers.
    pub fn ranked_len(&self) -> usize {
        self.set.len()
    }

    /// The full busiest-first ranking (test and validation support).
    pub fn ranking(&self) -> impl Iterator<Item = (ServerId, u64)> + '_ {
        self.set.iter().map(|&(Reverse(b), s)| (s, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_by_bytes_desc_with_low_id_ties() {
        let mut idx = ServerLoadIndex::new(&[2, 2, 2, 2]);
        idx.on_reserve(ServerId(2), 100);
        idx.on_reserve(ServerId(1), 300);
        idx.on_reserve(ServerId(3), 100);
        assert_eq!(idx.nth_hottest(0), Some(ServerId(1)));
        // 100-byte tie breaks toward the lower id.
        assert_eq!(idx.nth_hottest(1), Some(ServerId(2)));
        assert_eq!(idx.nth_hottest(2), Some(ServerId(3)));
        assert_eq!(idx.nth_hottest(3), Some(ServerId(0)));
        assert_eq!(idx.nth_hottest(4), None);
    }

    #[test]
    fn release_and_revoke_rekey_and_drop_servers() {
        let mut idx = ServerLoadIndex::new(&[1, 2]);
        idx.on_reserve(ServerId(0), 500);
        idx.on_reserve(ServerId(1), 200);
        idx.on_release(ServerId(0), 400);
        assert_eq!(idx.nth_hottest(0), Some(ServerId(1)));
        assert_eq!(idx.server_bytes(ServerId(0)), 100);
        // Server 0's only GPU dies: its leases vanish and it leaves the
        // ranking entirely.
        idx.on_gpu_revoked(ServerId(0), 100);
        assert_eq!(idx.ranked_len(), 1);
        assert_eq!(idx.nth_hottest(1), None);
        // Restore re-enters it at zero load.
        idx.on_gpu_restored(ServerId(0));
        assert_eq!(idx.ranked_len(), 2);
        assert_eq!(idx.nth_hottest(1), Some(ServerId(0)));
        assert_eq!(idx.server_bytes(ServerId(0)), 0);
        // A multi-GPU server losing one GPU keeps its surviving load.
        idx.on_gpu_revoked(ServerId(1), 50);
        assert_eq!(idx.server_bytes(ServerId(1)), 150);
        assert_eq!(idx.nth_hottest(0), Some(ServerId(1)));
    }
}
