//! Wall-clock self-time profiler for the engine's dispatch loop.
//!
//! Wall times vary run to run, so profiler output must never enter a
//! cached or byte-compared artifact — it is reported to stderr/stdout
//! beside them, exactly like the fleet's `BenchTiming`. The engine keeps
//! the profiler on the `Engine` struct (not `EngineState`) for the same
//! reason: it is not part of the simulated world.

use std::collections::BTreeMap;
use std::time::Instant;

use flexpipe_metrics::{fmt_f, P2Quantile, Table};

/// Aggregated wall-clock statistics for one named scope.
#[derive(Debug, Clone)]
pub struct ScopeStats {
    /// Times the scope ran.
    pub calls: u64,
    /// Total wall time, seconds.
    pub total_secs: f64,
    /// Longest single call, seconds.
    pub max_secs: f64,
    /// Median call estimator.
    pub p50: P2Quantile,
    /// Tail call estimator.
    pub p99: P2Quantile,
}

impl ScopeStats {
    fn new() -> Self {
        ScopeStats {
            calls: 0,
            total_secs: 0.0,
            max_secs: 0.0,
            p50: P2Quantile::new(0.5),
            p99: P2Quantile::new(0.99),
        }
    }
}

/// Scoped wall-clock timer collection.
///
/// Disabled by default: [`Profiler::start`] returns `None` and
/// [`Profiler::stop`] is a no-op, so instrumented code pays one branch
/// and no clock reads.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    enabled: bool,
    scopes: BTreeMap<String, ScopeStats>,
}

impl Profiler {
    /// A profiler, armed or not.
    pub fn new(enabled: bool) -> Self {
        Profiler {
            enabled,
            scopes: BTreeMap::new(),
        }
    }

    /// Whether timers are armed.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a scope: reads the clock only when enabled.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a scope opened by [`Profiler::start`], attributing the
    /// elapsed wall time to `name`.
    #[inline]
    pub fn stop(&mut self, name: &str, started: Option<Instant>) {
        if let Some(t) = started {
            self.observe(name, t.elapsed().as_secs_f64());
        }
    }

    /// Records one observation directly (test seam; also lets callers
    /// time things the `start`/`stop` pair cannot scope).
    pub fn observe(&mut self, name: &str, secs: f64) {
        if !self.enabled {
            return;
        }
        let st = self
            .scopes
            .entry(name.to_string())
            .or_insert_with(ScopeStats::new);
        st.calls += 1;
        st.total_secs += secs;
        if secs > st.max_secs {
            st.max_secs = secs;
        }
        st.p50.observe(secs);
        st.p99.observe(secs);
    }

    /// Call count for one scope (0 when never seen).
    pub fn calls(&self, name: &str) -> u64 {
        self.scopes.get(name).map_or(0, |s| s.calls)
    }

    /// Total wall seconds attributed to one scope.
    pub fn total_secs(&self, name: &str) -> f64 {
        self.scopes.get(name).map_or(0.0, |s| s.total_secs)
    }

    /// Iterates scopes in name order.
    pub fn scopes(&self) -> impl Iterator<Item = (&str, &ScopeStats)> {
        self.scopes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether any scope recorded anything.
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }

    /// Renders the self-time table, heaviest scope first (total wall
    /// time descending, ties by name).
    pub fn table(&self, title: &str) -> Table {
        let mut t = Table::new(
            title,
            &[
                "scope", "calls", "total ms", "mean us", "p50 us", "p99 us", "max us",
            ],
        );
        let mut rows: Vec<(&str, &ScopeStats)> = self.scopes().collect();
        rows.sort_by(|(na, a), (nb, b)| {
            b.total_secs
                .partial_cmp(&a.total_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(na.cmp(nb))
        });
        for (name, st) in rows {
            let mean_us = if st.calls == 0 {
                0.0
            } else {
                st.total_secs / st.calls as f64 * 1e6
            };
            t.row(vec![
                name.to_string(),
                st.calls.to_string(),
                fmt_f(st.total_secs * 1e3, 2),
                fmt_f(mean_us, 1),
                fmt_f(st.p50.estimate().unwrap_or(0.0) * 1e6, 1),
                fmt_f(st.p99.estimate().unwrap_or(0.0) * 1e6, 1),
                fmt_f(st.max_secs * 1e6, 1),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let mut p = Profiler::default();
        assert!(!p.enabled());
        let t = p.start();
        assert!(t.is_none());
        p.stop("x", t);
        p.observe("x", 1.0);
        assert!(p.is_empty());
    }

    #[test]
    fn enabled_profiler_aggregates() {
        let mut p = Profiler::new(true);
        p.observe("dispatch", 0.002);
        p.observe("dispatch", 0.004);
        p.observe("on_tick", 0.001);
        assert_eq!(p.calls("dispatch"), 2);
        assert!((p.total_secs("dispatch") - 0.006).abs() < 1e-12);
        let rendered = p.table("self-time").render();
        // Heaviest scope leads.
        assert!(rendered.find("dispatch").unwrap() < rendered.find("on_tick").unwrap());
    }

    #[test]
    fn start_stop_measures_something() {
        let mut p = Profiler::new(true);
        let t = p.start();
        std::hint::black_box((0..1000).sum::<u64>());
        p.stop("work", t);
        assert_eq!(p.calls("work"), 1);
        assert!(p.total_secs("work") >= 0.0);
    }
}
