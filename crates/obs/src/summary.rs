//! Offline trace consumption: JSONL parsing and run summaries.

use flexpipe_metrics::Table;

use crate::event::TraceRecord;
use crate::registry::EventRegistry;

/// A malformed line in a JSONL trace: which line (1-based) and why.
///
/// Traces are routinely truncated in the wild — a killed recording, a
/// partial download, a ring buffer cut mid-write — so consumers need the
/// position, not just a message, to decide whether the damage is a
/// garbage line in the middle or a clean cut at the tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong on that line (serde decode error text).
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON Lines trace (as produced by
/// [`crate::TraceRecorder::to_jsonl`]). Blank lines are ignored; a
/// malformed or truncated line fails with a [`ParseError`] naming it.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord = serde_json::from_str(line).map_err(|e| ParseError {
            line: i + 1,
            reason: format!("{e:?}"),
        })?;
        out.push(rec);
    }
    Ok(out)
}

/// Aggregate view of one parsed trace.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Records in the trace.
    pub records: usize,
    /// Virtual time of the first record, seconds.
    pub first_at: f64,
    /// Virtual time of the last record, seconds.
    pub last_at: f64,
    /// Registry recomputed from the records.
    pub registry: EventRegistry,
}

impl TraceSummary {
    /// Summarizes parsed records (assumed time-ordered, as a recorder
    /// emits them).
    pub fn from_records(records: &[TraceRecord]) -> TraceSummary {
        let mut registry = EventRegistry::new();
        for r in records {
            registry.observe(r.event.kind(), r.at);
        }
        TraceSummary {
            records: records.len(),
            first_at: records.first().map_or(0.0, |r| r.at),
            last_at: records.last().map_or(0.0, |r| r.at),
            registry,
        }
    }

    /// Renders the summary: a header line plus the per-kind table.
    pub fn render(&self, name: &str) -> String {
        let mut out = format!(
            "{name}: {} records spanning [{:.3}s, {:.3}s]\n",
            self.records, self.first_at, self.last_at
        );
        out.push_str(&self.registry.table("events by kind").render());
        out
    }

    /// Renders per-kind counts as CSV (kind,count), kinds sorted.
    pub fn counts_table(&self) -> Table {
        let mut t = Table::new("event counts", &["event", "count"]);
        for (kind, st) in self.registry.kinds() {
            t.row(vec![kind.to_string(), st.count.to_string()]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::recorder::{TraceMode, TraceRecorder};
    use flexpipe_sim::SimTime;

    #[test]
    fn summary_matches_live_registry() {
        let mut rec = TraceRecorder::new(TraceMode::Full);
        for i in 0..10u64 {
            rec.record(
                SimTime::from_secs_f64(i as f64),
                TraceEvent::RequestArrival { req: i },
            );
        }
        rec.record(
            SimTime::from_secs_f64(10.0),
            TraceEvent::RequestComplete {
                req: 0,
                instance: 1,
                generated: 8,
            },
        );
        let parsed = parse_jsonl(&rec.to_jsonl()).unwrap();
        let s = TraceSummary::from_records(&parsed);
        assert_eq!(s.records, 11);
        assert_eq!(s.registry.count("request_arrival"), 11 - 1);
        assert_eq!(
            s.registry.count("request_arrival"),
            rec.registry().count("request_arrival")
        );
        assert_eq!(s.last_at, 10.0);
        assert!(s.render("t").contains("request_arrival"));
    }

    #[test]
    fn parse_reports_the_bad_line() {
        let err = parse_jsonl("{\"seq\":0,\"at\":0.0,\"event\":\"RecoveryClosed\"}\nnot json\n")
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn parse_reports_a_truncated_tail() {
        // A recording killed mid-write: the last line is cut inside the
        // event object. The good prefix must not mask the damage.
        let mut rec = TraceRecorder::new(TraceMode::Full);
        rec.record(SimTime::from_secs(1), TraceEvent::RequestArrival { req: 0 });
        rec.record(SimTime::from_secs(2), TraceEvent::RecoveryClosed);
        let full = rec.to_jsonl();
        let cut = &full[..full.len() - 12];
        assert!(!cut.ends_with('\n'), "cut must land mid-line");
        let err = parse_jsonl(cut).unwrap_err();
        assert_eq!(err.line, 2, "{err}");
    }

    #[test]
    fn parse_reports_a_garbage_line_between_records() {
        let text = "{\"seq\":0,\"at\":0.0,\"event\":\"RecoveryClosed\"}\n\
                    {\"seq\":1,\"at\":1.0,\"event\":{\"bogus_kind\":{}}}\n\
                    {\"seq\":2,\"at\":2.0,\"event\":\"RecoveryClosed\"}\n";
        let err = parse_jsonl(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(!err.reason.is_empty());
        // Blank lines are fine and do not shift the numbering.
        let ok = parse_jsonl("\n{\"seq\":0,\"at\":0.0,\"event\":\"RecoveryClosed\"}\n\n").unwrap();
        assert_eq!(ok.len(), 1);
    }
}
