//! Observability for the FlexPipe serving engine: structured
//! virtual-time-stamped traces, a per-event-kind counter/histogram
//! registry, and a wall-clock self-time profiler.
//!
//! The crate is deliberately engine-independent — trace records carry
//! plain integer ids and seconds, not engine types — so the same format
//! works for the `fleet trace` CLI today and the planned
//! schedule-equivalence checker later: two runs are behaviourally
//! equivalent iff their trace files are byte-identical, and
//! [`diff::first_divergence`] pinpoints the first event where they are
//! not.
//!
//! Three layers, all always-compiled and cheaply disableable:
//!
//! - [`TraceRecorder`] — the structured event log. `Off` costs one branch
//!   per hook; `Ring(n)` keeps the last `n` records in constant memory
//!   (counters still see everything); `Full` retains the whole run for
//!   JSONL export. Records are stamped with *virtual* time only, so a
//!   trace is byte-stable across machines and thread counts.
//! - [`EventRegistry`] — per-event-kind counts plus P² quantiles of the
//!   virtual-time gap each kind closes (how simulated time distributes
//!   over the engine's handlers). Fed by the recorder in every mode,
//!   recomputable offline from a parsed trace.
//! - [`Profiler`] — scoped *wall-clock* timers around event dispatch and
//!   `ControlPolicy::on_tick`. Wall times are inherently
//!   non-deterministic, so the profiler lives outside every cached or
//!   byte-compared artifact, mirroring the fleet's `BenchTiming`.

#![warn(missing_docs)]

pub mod diff;
pub mod event;
pub mod profile;
pub mod recorder;
pub mod registry;
pub mod summary;

pub use diff::{first_divergence, Divergence};
pub use event::{TraceEvent, TraceRecord};
pub use profile::Profiler;
pub use recorder::{TraceMode, TraceRecorder};
pub use registry::{EventRegistry, KindStats};
pub use summary::{parse_jsonl, ParseError, TraceSummary};
