//! First-divergence comparison between two trace files.
//!
//! The determinism contract makes trace equality exact: two runs of the
//! same scenario must produce byte-identical JSONL. This module is the
//! seed of the planned schedule-equivalence checker — today it reports
//! the first line where two traces disagree; later passes will classify
//! *why* (reordering vs. genuinely different behaviour).

/// The first point where two traces disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// 1-based line number of the first differing line.
    pub line: usize,
    /// That line in the left trace (`None` when it ended first).
    pub left: Option<String>,
    /// That line in the right trace (`None` when it ended first).
    pub right: Option<String>,
}

impl Divergence {
    /// Renders a structured report of the divergence.
    pub fn render(&self, left_name: &str, right_name: &str) -> String {
        let mut out = format!("traces diverge at line {}\n", self.line);
        match &self.left {
            Some(l) => out.push_str(&format!("  {left_name}: {l}\n")),
            None => out.push_str(&format!(
                "  {left_name}: <ended at line {}>\n",
                self.line - 1
            )),
        }
        match &self.right {
            Some(r) => out.push_str(&format!("  {right_name}: {r}\n")),
            None => out.push_str(&format!(
                "  {right_name}: <ended at line {}>\n",
                self.line - 1
            )),
        }
        out
    }
}

/// Compares two JSONL traces line by line and returns the first
/// divergence, or `None` when they are identical. Comparison is textual
/// (byte equality per line), which under the determinism contract is
/// also semantic equality.
pub fn first_divergence(left: &str, right: &str) -> Option<Divergence> {
    let mut l = left.lines();
    let mut r = right.lines();
    let mut line = 0;
    loop {
        line += 1;
        match (l.next(), r.next()) {
            (None, None) => return None,
            (a, b) if a == b => continue,
            (a, b) => {
                return Some(Divergence {
                    line,
                    left: a.map(str::to_string),
                    right: b.map(str::to_string),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces_do_not_diverge() {
        let t = "{\"seq\":0}\n{\"seq\":1}\n";
        assert_eq!(first_divergence(t, t), None);
        assert_eq!(first_divergence("", ""), None);
    }

    #[test]
    fn first_difference_is_reported() {
        let a = "x\ny\nz\n";
        let b = "x\nY\nz\n";
        let d = first_divergence(a, b).unwrap();
        assert_eq!(d.line, 2);
        assert_eq!(d.left.as_deref(), Some("y"));
        assert_eq!(d.right.as_deref(), Some("Y"));
        let rep = d.render("a.jsonl", "b.jsonl");
        assert!(rep.contains("line 2"));
        assert!(rep.contains("a.jsonl: y"));
    }

    #[test]
    fn truncation_is_a_divergence() {
        let a = "x\ny\n";
        let b = "x\n";
        let d = first_divergence(a, b).unwrap();
        assert_eq!(d.line, 2);
        assert_eq!(d.left.as_deref(), Some("y"));
        assert_eq!(d.right, None);
        assert!(d.render("l", "r").contains("<ended at line 1>"));
    }
}
