//! The trace recorder: the engine's single emission point.

use std::collections::VecDeque;

use flexpipe_sim::SimTime;

use crate::event::{TraceEvent, TraceRecord};
use crate::registry::EventRegistry;

/// How much of the event stream the recorder retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing: one branch per hook, no allocation, no registry.
    Off,
    /// Keep the most recent `n` records in a ring; the registry still
    /// counts every event. The flight-recorder mode for long runs.
    Ring(usize),
    /// Keep every record (JSONL export, diffing, checking).
    Full,
}

impl TraceMode {
    /// Parses `off` / `ring` / `ring:<n>` / `full` (the `fleet trace`
    /// CLI syntax). `ring` without a capacity defaults to
    /// [`TraceMode::DEFAULT_RING`].
    pub fn parse(s: &str) -> Option<TraceMode> {
        match s {
            "off" => Some(TraceMode::Off),
            "full" => Some(TraceMode::Full),
            "ring" => Some(TraceMode::Ring(Self::DEFAULT_RING)),
            _ => {
                let n = s.strip_prefix("ring:")?.parse().ok()?;
                Some(TraceMode::Ring(n))
            }
        }
    }

    /// Default ring capacity when `ring` is requested without a size.
    pub const DEFAULT_RING: usize = 4096;
}

impl std::fmt::Display for TraceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceMode::Off => write!(f, "off"),
            TraceMode::Ring(n) => write!(f, "ring:{n}"),
            TraceMode::Full => write!(f, "full"),
        }
    }
}

/// Structured trace recorder. Owned by the engine state; every hook site
/// calls [`TraceRecorder::record`], which is a single branch when the
/// mode is [`TraceMode::Off`].
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    mode: TraceMode,
    records: VecDeque<TraceRecord>,
    registry: EventRegistry,
    next_seq: u64,
    evicted: u64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(TraceMode::Off)
    }
}

impl TraceRecorder {
    /// A recorder in the given mode.
    pub fn new(mode: TraceMode) -> Self {
        TraceRecorder {
            mode,
            records: VecDeque::new(),
            registry: EventRegistry::new(),
            next_seq: 0,
            evicted: 0,
        }
    }

    /// A disabled recorder (the engine default).
    pub fn off() -> Self {
        TraceRecorder::new(TraceMode::Off)
    }

    /// The recorder's mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Whether hooks should bother constructing events.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode != TraceMode::Off
    }

    /// Records one event at virtual time `at`. A no-op in `Off` mode.
    #[inline]
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.mode == TraceMode::Off {
            return;
        }
        self.push(at.as_secs_f64(), event);
    }

    fn push(&mut self, at: f64, event: TraceEvent) {
        self.registry.observe(event.kind(), at);
        if let TraceMode::Ring(cap) = self.mode {
            if cap == 0 {
                self.evicted += 1;
                self.next_seq += 1;
                return;
            }
            if self.records.len() == cap {
                self.records.pop_front();
                self.evicted += 1;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records.push_back(TraceRecord { seq, at, event });
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted by the ring (0 in `Full` mode).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total events seen (retained + evicted).
    pub fn total_seen(&self) -> u64 {
        self.next_seq
    }

    /// The counter/histogram registry (fed in `Ring` and `Full` modes).
    pub fn registry(&self) -> &EventRegistry {
        &self.registry
    }

    /// Serializes the retained records as JSON Lines, one record per
    /// line, trailing newline included when non-empty. Virtual time
    /// only, so the output is byte-stable across machines and thread
    /// counts.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&serde_json::to_string(r).expect("trace records serialize"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn off_records_nothing() {
        let mut r = TraceRecorder::off();
        r.record(at(1.0), TraceEvent::RecoveryClosed);
        assert!(r.is_empty());
        assert_eq!(r.total_seen(), 0);
        assert_eq!(r.registry().total(), 0);
        assert_eq!(r.to_jsonl(), "");
    }

    #[test]
    fn ring_bounds_retention_but_counts_everything() {
        let mut r = TraceRecorder::new(TraceMode::Ring(2));
        for i in 0..5 {
            r.record(at(i as f64), TraceEvent::RequestArrival { req: i });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.evicted(), 3);
        assert_eq!(r.total_seen(), 5);
        assert_eq!(r.registry().count("request_arrival"), 5);
        // The ring keeps the newest records with their original seqs.
        let seqs: Vec<u64> = r.records().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn full_jsonl_round_trips() {
        let mut r = TraceRecorder::new(TraceMode::Full);
        r.record(at(0.5), TraceEvent::InstanceReady { instance: 1 });
        r.record(
            at(1.5),
            TraceEvent::RequestAdmit {
                req: 0,
                instance: 1,
            },
        );
        let jsonl = r.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        let parsed = crate::summary::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].event.kind(), "request_admit");
    }

    #[test]
    fn mode_parse_round_trips() {
        assert_eq!(TraceMode::parse("off"), Some(TraceMode::Off));
        assert_eq!(TraceMode::parse("full"), Some(TraceMode::Full));
        assert_eq!(
            TraceMode::parse("ring"),
            Some(TraceMode::Ring(TraceMode::DEFAULT_RING))
        );
        assert_eq!(TraceMode::parse("ring:16"), Some(TraceMode::Ring(16)));
        assert_eq!(TraceMode::parse("bogus"), None);
        assert_eq!(TraceMode::Ring(16).to_string(), "ring:16");
    }
}
