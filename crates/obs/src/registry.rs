//! Per-event-kind counters and virtual-time occupancy histograms.

use std::collections::BTreeMap;

use flexpipe_metrics::{fmt_f, P2Quantile, Table};

/// Streaming statistics for one event kind.
#[derive(Debug, Clone)]
pub struct KindStats {
    /// Events of this kind seen.
    pub count: u64,
    /// Total virtual time this kind closed (sum of gaps from the
    /// previous recorded event of any kind).
    pub occupancy_secs: f64,
    /// Largest single gap closed, seconds.
    pub max_gap_secs: f64,
    /// Median gap estimator.
    pub gap_p50: P2Quantile,
    /// Tail gap estimator.
    pub gap_p99: P2Quantile,
}

impl KindStats {
    fn new() -> Self {
        KindStats {
            count: 0,
            occupancy_secs: 0.0,
            max_gap_secs: 0.0,
            gap_p50: P2Quantile::new(0.5),
            gap_p99: P2Quantile::new(0.99),
        }
    }
}

/// Counter/histogram registry over the trace event stream.
///
/// An event's "occupancy" is the virtual-time gap it closes: the span
/// between the previously recorded event (of any kind) and this one.
/// Summed per kind, the gaps partition the traced span, which is the
/// cheapest honest answer to "where does simulated time go?" without
/// instrumenting every handler's interior.
#[derive(Debug, Clone)]
pub struct EventRegistry {
    kinds: BTreeMap<&'static str, KindStats>,
    last_at: Option<f64>,
    total: u64,
}

impl Default for EventRegistry {
    fn default() -> Self {
        EventRegistry::new()
    }
}

impl EventRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        EventRegistry {
            kinds: BTreeMap::new(),
            last_at: None,
            total: 0,
        }
    }

    /// Feeds one event occurrence. `at_secs` must be non-decreasing
    /// (virtual time from a single run).
    pub fn observe(&mut self, kind: &'static str, at_secs: f64) {
        let gap = (at_secs - self.last_at.unwrap_or(at_secs)).max(0.0);
        self.last_at = Some(at_secs);
        self.total += 1;
        let st = self.kinds.entry(kind).or_insert_with(KindStats::new);
        st.count += 1;
        st.occupancy_secs += gap;
        if gap > st.max_gap_secs {
            st.max_gap_secs = gap;
        }
        st.gap_p50.observe(gap);
        st.gap_p99.observe(gap);
    }

    /// Total events observed (all kinds).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for one kind (0 when never seen).
    pub fn count(&self, kind: &str) -> u64 {
        self.kinds.get(kind).map_or(0, |s| s.count)
    }

    /// Iterates kinds in lexicographic (deterministic) order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, &KindStats)> {
        self.kinds.iter().map(|(k, v)| (*k, v))
    }

    /// Renders the registry as a table: one row per kind, sorted by
    /// count descending (ties lexicographic — fully deterministic).
    pub fn table(&self, title: &str) -> Table {
        let mut t = Table::new(
            title,
            &[
                "event",
                "count",
                "occupancy s",
                "gap p50 s",
                "gap p99 s",
                "gap max s",
            ],
        );
        let mut rows: Vec<(&'static str, &KindStats)> = self.kinds().collect();
        rows.sort_by(|(ka, a), (kb, b)| b.count.cmp(&a.count).then(ka.cmp(kb)));
        for (kind, st) in rows {
            t.row(vec![
                kind.to_string(),
                st.count.to_string(),
                fmt_f(st.occupancy_secs, 3),
                fmt_f(st.gap_p50.estimate().unwrap_or(0.0), 6),
                fmt_f(st.gap_p99.estimate().unwrap_or(0.0), 6),
                fmt_f(st.max_gap_secs, 6),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_partitions_the_span() {
        let mut r = EventRegistry::new();
        r.observe("a", 0.0);
        r.observe("b", 2.0);
        r.observe("a", 5.0);
        r.observe("b", 5.0);
        assert_eq!(r.total(), 4);
        assert_eq!(r.count("a"), 2);
        let occ: f64 = r.kinds().map(|(_, s)| s.occupancy_secs).sum();
        // First event closes a zero gap; the rest partition [0, 5].
        assert!((occ - 5.0).abs() < 1e-9);
    }

    #[test]
    fn table_rows_are_count_sorted() {
        let mut r = EventRegistry::new();
        for i in 0..5 {
            r.observe("hot", i as f64);
        }
        r.observe("cold", 5.0);
        let t = r.table("x");
        let rendered = t.render();
        let hot = rendered.find("hot").unwrap();
        let cold = rendered.find("cold").unwrap();
        assert!(hot < cold);
    }
}
