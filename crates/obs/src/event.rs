//! The trace vocabulary: everything the serving engine can say about a
//! run, as plain data.
//!
//! Ids are raw `u64`s (the engine's `InstanceId`/`RequestId`/`UbatchId`
//! newtypes unwrapped) and times are seconds of *virtual* time, so a
//! trace parses without linking the engine and is byte-stable across
//! machines and thread counts.

use serde::{Deserialize, Serialize};

/// One structured engine event.
///
/// The vocabulary covers the three lifecycles the paper's claims are
/// about: requests (arrival → admit → prefill → decode → complete/abort),
/// instances (spawn → ready → refactor prepare/pause/commit/abort →
/// retire/release), and disruption episodes (revoke notice → revocation /
/// crippling → capacity restore → recovery closed), plus the control
/// plane's periodic tick and explicit policy actions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A request reached the gateway queue.
    RequestArrival {
        /// Request id.
        req: u64,
    },
    /// The gateway admitted a request to an instance's batch.
    RequestAdmit {
        /// Request id.
        req: u64,
        /// Serving instance.
        instance: u64,
    },
    /// A request's prefill pass completed (first token produced).
    RequestPrefillDone {
        /// Request id.
        req: u64,
        /// Serving instance.
        instance: u64,
    },
    /// A decode micro-batch launched on an instance.
    DecodeLaunch {
        /// The instance.
        instance: u64,
        /// Micro-batch id.
        ubatch: u64,
        /// Requests in the batch.
        members: u32,
    },
    /// A request finished generating and left the system.
    RequestComplete {
        /// Request id.
        req: u64,
        /// Instance it completed on.
        instance: u64,
        /// Tokens generated.
        generated: u32,
    },
    /// A revocation killed a request's in-flight work; the engine
    /// replayed it to the gateway front.
    RequestAbort {
        /// Request id.
        req: u64,
        /// Instance it was aborted on.
        instance: u64,
    },
    /// An instance was created (elastic or prewarmed path).
    InstanceSpawn {
        /// New instance id.
        instance: u64,
        /// Pipeline stage count.
        stages: u32,
        /// Whether it skipped provisioning/loading delays.
        prewarmed: bool,
    },
    /// An instance finished loading and started serving.
    InstanceReady {
        /// The instance.
        instance: u64,
    },
    /// An instance was told to drain and retire.
    InstanceRetire {
        /// The instance.
        instance: u64,
    },
    /// An instance's devices were released back to the provisioner.
    InstanceRelease {
        /// The instance.
        instance: u64,
    },
    /// An inflight refactor started background preparation.
    RefactorPrepare {
        /// The instance.
        instance: u64,
        /// Stage count before.
        from_stages: u32,
        /// Stage count after.
        to_stages: u32,
    },
    /// A refactor's preparation finished; the switchover pause began.
    RefactorPause {
        /// The instance.
        instance: u64,
    },
    /// A refactor committed: the new topology is live.
    RefactorCommit {
        /// The instance.
        instance: u64,
        /// New stage count.
        stages: u32,
        /// New instance epoch.
        epoch: u64,
    },
    /// A refactor aborted at switchover (capacity shrank under it).
    RefactorAbort {
        /// The instance.
        instance: u64,
    },
    /// The platform announced a preemption with a grace window.
    RevokeNotice {
        /// Devices that will be revoked.
        gpus: u32,
        /// Revocation deadline, virtual seconds.
        deadline_secs: f64,
    },
    /// A revocation executed: the devices are gone.
    Revocation {
        /// Devices revoked.
        gpus: u32,
    },
    /// A revocation wounded an instance mid-flight.
    InstanceCrippled {
        /// The instance.
        instance: u64,
        /// Stage count before the revocation.
        original_stages: u32,
        /// Stages whose devices survived.
        surviving_stages: u32,
    },
    /// Previously revoked capacity returned to the pool.
    CapacityRestore {
        /// Devices restored.
        gpus: u32,
    },
    /// The deployment recovered: some instance is serving again and no
    /// rebuild is in flux, closing the open disruption episode.
    RecoveryClosed,
    /// A control-loop tick ran.
    ControlTick {
        /// Gateway queue length at the tick.
        queued: u32,
        /// Live instance count at the tick.
        instances: u32,
    },
    /// An explicit, named policy decision (e.g. a cold respawn after a
    /// disruption). Policies emit these through `Ctx::trace`.
    PolicyAction {
        /// Action name.
        action: String,
        /// Instance the action targets (0 when none).
        instance: u64,
    },
}

impl TraceEvent {
    /// Stable kind label, used as the registry/profile key and in
    /// summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RequestArrival { .. } => "request_arrival",
            TraceEvent::RequestAdmit { .. } => "request_admit",
            TraceEvent::RequestPrefillDone { .. } => "request_prefill_done",
            TraceEvent::DecodeLaunch { .. } => "decode_launch",
            TraceEvent::RequestComplete { .. } => "request_complete",
            TraceEvent::RequestAbort { .. } => "request_abort",
            TraceEvent::InstanceSpawn { .. } => "instance_spawn",
            TraceEvent::InstanceReady { .. } => "instance_ready",
            TraceEvent::InstanceRetire { .. } => "instance_retire",
            TraceEvent::InstanceRelease { .. } => "instance_release",
            TraceEvent::RefactorPrepare { .. } => "refactor_prepare",
            TraceEvent::RefactorPause { .. } => "refactor_pause",
            TraceEvent::RefactorCommit { .. } => "refactor_commit",
            TraceEvent::RefactorAbort { .. } => "refactor_abort",
            TraceEvent::RevokeNotice { .. } => "revoke_notice",
            TraceEvent::Revocation { .. } => "revocation",
            TraceEvent::InstanceCrippled { .. } => "instance_crippled",
            TraceEvent::CapacityRestore { .. } => "capacity_restore",
            TraceEvent::RecoveryClosed => "recovery_closed",
            TraceEvent::ControlTick { .. } => "control_tick",
            TraceEvent::PolicyAction { .. } => "policy_action",
        }
    }
}

/// One recorded event: a sequence number (per-run, gap-free in `Full`
/// mode), a virtual timestamp and the event itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Emission order within the run (0-based).
    pub seq: u64,
    /// Virtual time of emission, seconds.
    pub at: f64,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_for_distinct_variants() {
        let a = TraceEvent::RequestArrival { req: 1 };
        let b = TraceEvent::RequestComplete {
            req: 1,
            instance: 2,
            generated: 3,
        };
        assert_ne!(a.kind(), b.kind());
    }

    #[test]
    fn records_round_trip_through_json() {
        let r = TraceRecord {
            seq: 7,
            at: 12.5,
            event: TraceEvent::RefactorCommit {
                instance: 3,
                stages: 4,
                epoch: 2,
            },
        };
        let s = serde_json::to_string(&r).unwrap();
        let back: TraceRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn unit_variant_round_trips() {
        let r = TraceRecord {
            seq: 0,
            at: 0.0,
            event: TraceEvent::RecoveryClosed,
        };
        let s = serde_json::to_string(&r).unwrap();
        let back: TraceRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
    }
}
