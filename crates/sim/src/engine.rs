//! A minimal world-driver loop on top of the event queue.
//!
//! Simulation state lives in a user-defined "world" implementing [`World`];
//! the engine pops events and hands them to the world together with the
//! queue so handlers can schedule follow-up events. The split keeps the DES
//! core free of any serving-domain knowledge.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A simulation world: owns all mutable state and handles events.
pub trait World {
    /// The event payload type routed through the queue.
    type Event;

    /// Handles one event fired at `now`; may schedule more via `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Outcome of a bounded simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the deadline.
    Drained {
        /// Clock value when the last event fired.
        at: SimTime,
    },
    /// The deadline was reached with events still pending.
    DeadlineReached,
    /// The step budget was exhausted (runaway-loop guard).
    StepBudgetExhausted,
}

/// Runs `world` until `deadline`, the queue drains, or `max_steps` events.
///
/// Returns the outcome and the number of events processed. `max_steps`
/// guards against accidental infinite self-scheduling loops in handlers.
///
/// # Examples
///
/// ```
/// use flexpipe_sim::engine::{run, RunOutcome, World};
/// use flexpipe_sim::queue::EventQueue;
/// use flexpipe_sim::time::{SimDuration, SimTime};
///
/// struct Counter(u32);
/// impl World for Counter {
///     type Event = ();
///     fn handle(&mut self, _t: SimTime, _e: (), q: &mut EventQueue<()>) {
///         self.0 += 1;
///         if self.0 < 5 {
///             q.schedule_after(SimDuration::from_secs(1), ()).unwrap();
///         }
///     }
/// }
///
/// let mut world = Counter(0);
/// let mut q = EventQueue::new();
/// q.schedule_now(());
/// let (outcome, steps) = run(&mut world, &mut q, SimTime::from_secs(100), u64::MAX);
/// assert_eq!(steps, 5);
/// assert!(matches!(outcome, RunOutcome::Drained { .. }));
/// ```
pub fn run<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    deadline: SimTime,
    max_steps: u64,
) -> (RunOutcome, u64) {
    let mut steps = 0u64;
    loop {
        if steps >= max_steps {
            return (RunOutcome::StepBudgetExhausted, steps);
        }
        match queue.pop_until(deadline) {
            Some((now, event)) => {
                world.handle(now, event, queue);
                steps += 1;
            }
            None => {
                let outcome = if queue.is_empty() {
                    RunOutcome::Drained { at: queue.now() }
                } else {
                    RunOutcome::DeadlineReached
                };
                return (outcome, steps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    struct Pinger {
        fired_at: Vec<SimTime>,
    }

    impl World for Pinger {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
            self.fired_at.push(now);
            if ev > 0 {
                q.schedule_after(SimDuration::from_secs(1), ev - 1).unwrap();
            }
        }
    }

    #[test]
    fn chain_runs_to_completion() {
        let mut w = Pinger { fired_at: vec![] };
        let mut q = EventQueue::new();
        q.schedule_now(3);
        let (outcome, steps) = run(&mut w, &mut q, SimTime::from_secs(100), 1000);
        assert_eq!(steps, 4);
        assert!(matches!(outcome, RunOutcome::Drained { .. }));
        assert_eq!(w.fired_at.len(), 4);
        assert_eq!(w.fired_at[3], SimTime::from_secs(3));
    }

    #[test]
    fn deadline_stops_run_and_preserves_events() {
        let mut w = Pinger { fired_at: vec![] };
        let mut q = EventQueue::new();
        q.schedule_now(10);
        let (outcome, steps) = run(&mut w, &mut q, SimTime::from_secs(2), 1000);
        assert_eq!(outcome, RunOutcome::DeadlineReached);
        assert_eq!(steps, 3); // fired at t=0, 1, 2
        assert_eq!(q.len(), 1);
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    #[test]
    fn step_budget_guards_runaway() {
        struct Loopy;
        impl World for Loopy {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), q: &mut EventQueue<()>) {
                q.schedule_now(());
            }
        }
        let mut q = EventQueue::new();
        q.schedule_now(());
        let (outcome, steps) = run(&mut Loopy, &mut q, SimTime::MAX, 500);
        assert_eq!(outcome, RunOutcome::StepBudgetExhausted);
        assert_eq!(steps, 500);
    }
}
