//! Simulation time and duration types.
//!
//! All simulation state is timestamped with [`SimTime`], a nanosecond-
//! resolution instant measured from the start of the simulation. Spans
//! between instants are [`SimDuration`]s. Both are thin wrappers over `u64`
//! nanoseconds so they are cheap to copy, totally ordered and hashable,
//! which the event queue relies on for deterministic replay.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Number of nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Number of nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

/// An instant in simulated time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use flexpipe_sim::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_secs_f64(), 0.25);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant, used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// Negative inputs clamp to [`SimTime::ZERO`]; this keeps workload
    /// generators that jitter timestamps from panicking near the origin.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimTime(0)
        } else {
            SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
        }
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional milliseconds since simulation start.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// The span from `earlier` to `self`, saturating to zero when
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration, `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a span from fractional seconds, clamping negatives to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
        }
    }

    /// Creates a span from fractional milliseconds, clamping negatives to zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the span by a non-negative factor, saturating on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "duration scale factor must be finite and non-negative, got {factor}"
        );
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(scaled.round() as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: scheduled past u64::MAX nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The span between two instants.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow: rhs is later than lhs"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < NANOS_PER_MICRO {
            write!(f, "{ns}ns")
        } else if ns < NANOS_PER_MILLI {
            write!(f, "{:.2}us", ns as f64 / NANOS_PER_MICRO as f64)
        } else if ns < NANOS_PER_SEC {
            write!(f, "{:.3}ms", ns as f64 / NANOS_PER_MILLI as f64)
        } else {
            write!(f, "{:.3}s", ns as f64 / NANOS_PER_SEC as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5 * NANOS_PER_MILLI);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7 * NANOS_PER_MICRO);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_secs_f64(), 14.0);
        assert_eq!((t - d).as_secs_f64(), 6.0);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn mul_f64_scales_and_saturates() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_secs(3));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn display_is_unit_scaled() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(3));
    }
}
