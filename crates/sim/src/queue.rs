//! The discrete-event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, sequence)` where the sequence number is the
//! insertion order; ties in time therefore fire in the order they were
//! scheduled, which makes whole-simulation replay bit-for-bit deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An event together with its firing time and deterministic tie-breaker.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we need earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Error returned when scheduling into the past.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleInPast {
    /// The current simulation clock.
    pub now: SimTime,
    /// The rejected target time.
    pub requested: SimTime,
}

impl std::fmt::Display for ScheduleInPast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot schedule event at {} before current time {}",
            self.requested, self.now
        )
    }
}

impl std::error::Error for ScheduleInPast {}

/// A time-ordered event queue with a monotonically advancing clock.
///
/// # Examples
///
/// ```
/// use flexpipe_sim::queue::EventQueue;
/// use flexpipe_sim::time::{SimDuration, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_after(SimDuration::from_secs(2), "later").unwrap();
/// q.schedule_after(SimDuration::from_secs(1), "sooner").unwrap();
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
        }
    }

    /// The current simulation clock (time of the most recently popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling exactly at the current clock is allowed (the event fires
    /// "immediately", after already-queued events at the same instant).
    pub fn schedule(&mut self, at: SimTime, event: E) -> Result<(), ScheduleInPast> {
        if at < self.now {
            return Err(ScheduleInPast {
                now: self.now,
                requested: at,
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
        Ok(())
    }

    /// Schedules `event` after a relative delay from the current clock.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> Result<(), ScheduleInPast> {
        self.schedule(self.now + delay, event)
    }

    /// Schedules `event` at the current clock instant.
    pub fn schedule_now(&mut self, event: E) {
        self.schedule(self.now, event)
            .expect("scheduling at the current instant cannot fail");
    }

    /// The firing time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let scheduled = self.heap.pop()?;
        debug_assert!(scheduled.at >= self.now, "event queue time went backwards");
        self.now = scheduled.at;
        self.popped += 1;
        Some((scheduled.at, scheduled.event))
    }

    /// Pops the next event only if it fires at or before `deadline`.
    ///
    /// When the next event is later than `deadline` the clock advances to
    /// `deadline` and `None` is returned, so callers can run a simulation
    /// "until t" and leave the remaining events intact.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => {
                if deadline > self.now {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Drops all pending events, keeping the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// The events tied at the earliest firing time, in deterministic
    /// insertion order: index 0 is exactly what [`EventQueue::pop`] would
    /// fire next. Empty when no events are pending.
    ///
    /// This is the schedule-exploration seam: a driver that wants to
    /// permute same-instant orderings reads the batch here and commits a
    /// choice with [`EventQueue::pop_tied`].
    pub fn front_batch(&self) -> Vec<&E> {
        let Some(t) = self.peek_time() else {
            return Vec::new();
        };
        let mut tied: Vec<&Scheduled<E>> = self.heap.iter().filter(|s| s.at == t).collect();
        tied.sort_by_key(|s| s.seq);
        tied.into_iter().map(|s| &s.event).collect()
    }

    /// Pops the `index`-th event (insertion order) of the front same-time
    /// batch, advancing the clock to its firing time. `pop_tied(0)` is
    /// identical to [`EventQueue::pop`]. Events skipped over keep their
    /// original sequence numbers, so subsequent pops see the rest of the
    /// batch in unchanged relative order. Returns `None` when the queue is
    /// empty or `index` is out of range for the front batch (the queue is
    /// left untouched).
    pub fn pop_tied(&mut self, index: usize) -> Option<(SimTime, E)> {
        let t = self.peek_time()?;
        let mut batch = Vec::new();
        while self.heap.peek().is_some_and(|s| s.at == t) {
            batch.push(self.heap.pop().expect("peeked"));
        }
        if index >= batch.len() {
            self.heap.extend(batch);
            return None;
        }
        let chosen = batch.swap_remove(index);
        self.heap.extend(batch);
        debug_assert!(chosen.at >= self.now, "event queue time went backwards");
        self.now = chosen.at;
        self.popped += 1;
        Some((chosen.at, chosen.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c').unwrap();
        q.schedule(SimTime::from_secs(1), 'a').unwrap();
        q.schedule(SimTime::from_secs(2), 'b').unwrap();
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i).unwrap();
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ()).unwrap();
        q.schedule(SimTime::from_secs(5), ()).unwrap();
        q.schedule(SimTime::from_secs(9), ()).unwrap();
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.now(), SimTime::from_secs(9));
    }

    #[test]
    fn rejects_scheduling_in_past() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ()).unwrap();
        q.pop();
        let err = q.schedule(SimTime::from_secs(1), ()).unwrap_err();
        assert_eq!(err.requested, SimTime::from_secs(1));
        assert_eq!(err.now, SimTime::from_secs(2));
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), 1).unwrap();
        q.pop();
        q.schedule_now(2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2)));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 'a').unwrap();
        q.schedule(SimTime::from_secs(10), 'b').unwrap();
        assert_eq!(
            q.pop_until(SimTime::from_secs(5)),
            Some((SimTime::from_secs(1), 'a'))
        );
        assert_eq!(q.pop_until(SimTime::from_secs(5)), None);
        assert_eq!(q.now(), SimTime::from_secs(5));
        assert_eq!(q.len(), 1);
        // The remaining event is still there and fires later.
        assert_eq!(
            q.pop_until(SimTime::from_secs(20)),
            Some((SimTime::from_secs(10), 'b'))
        );
    }

    #[test]
    fn front_batch_lists_ties_in_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), 'x').unwrap();
        q.schedule(SimTime::from_secs(1), 'a').unwrap();
        q.schedule(SimTime::from_secs(1), 'b').unwrap();
        q.schedule(SimTime::from_secs(1), 'c').unwrap();
        assert_eq!(q.front_batch(), vec![&'a', &'b', &'c']);
        // Reading the batch does not disturb the queue.
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 'a')));
        let empty: EventQueue<char> = EventQueue::new();
        assert!(empty.front_batch().is_empty());
    }

    #[test]
    fn pop_tied_zero_matches_pop() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for q in [&mut a, &mut b] {
            q.schedule(SimTime::from_secs(1), 'a').unwrap();
            q.schedule(SimTime::from_secs(1), 'b').unwrap();
            q.schedule(SimTime::from_secs(3), 'c').unwrap();
        }
        loop {
            let x = a.pop();
            let y = b.pop_tied(0);
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
        assert_eq!(a.events_fired(), b.events_fired());
    }

    #[test]
    fn pop_tied_permutes_only_the_front_batch() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..4 {
            q.schedule(t, i).unwrap();
        }
        q.schedule(SimTime::from_secs(2), 99).unwrap();
        // Fire the batch as 2, 0, 3, 1: skipped events keep their order.
        assert_eq!(q.pop_tied(2), Some((t, 2)));
        assert_eq!(q.front_batch(), vec![&0, &1, &3]);
        assert_eq!(q.pop_tied(0), Some((t, 0)));
        assert_eq!(q.pop_tied(1), Some((t, 3)));
        assert_eq!(q.pop_tied(0), Some((t, 1)));
        // The later event is untouched and out-of-range choices are inert.
        assert_eq!(q.pop_tied(1), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_tied(0), Some((SimTime::from_secs(2), 99)));
        assert_eq!(q.pop_tied(0), None);
        assert_eq!(q.events_fired(), 5);
    }

    #[test]
    fn events_fired_counts() {
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.schedule(SimTime::from_secs(i), i).unwrap();
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_fired(), 4);
    }
}
