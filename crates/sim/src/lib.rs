//! Deterministic discrete-event simulation engine for the FlexPipe
//! reproduction.
//!
//! The crate provides four small, orthogonal pieces:
//!
//! - [`time`] — nanosecond [`time::SimTime`] instants and
//!   [`time::SimDuration`] spans;
//! - [`queue`] — the `(time, seq)`-ordered [`queue::EventQueue`] whose
//!   deterministic tie-breaking makes whole runs replayable;
//! - [`rng`] — a stable xoshiro256++ [`rng::SimRng`] with labelled stream
//!   derivation, so simulations reproduce bit-for-bit across builds;
//! - [`dist`] — the samplers the experiments need, most importantly
//!   Gamma-renewal inter-arrivals with an exact target coefficient of
//!   variation ([`dist::GammaInterarrival`]).
//!
//! Everything above this crate (cluster, serving engine, FlexPipe itself)
//! treats it as the substrate that replaces wall-clock time and real
//! hardware nondeterminism.

#![warn(missing_docs)]

pub mod dist;
pub mod engine;
pub mod queue;
pub mod rng;
pub mod time;

pub use dist::{ExpInterarrival, GammaInterarrival, LogNormalSampler, SampleStats};
pub use engine::{run, RunOutcome, World};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
