//! Sampling helpers for the distributions the FlexPipe experiments use.
//!
//! The central one is [`GammaInterarrival`]: a renewal process whose
//! inter-arrival times are Gamma distributed has coefficient of variation
//! `CV = 1/sqrt(shape)`, so any target `(mean, CV)` pair maps to exactly one
//! Gamma. The paper sweeps CV from 0.1 to 8 (§3.3, §9); CV = 1 degenerates to
//! a Poisson process.

use rand_distr::{Distribution, Exp, Gamma, LogNormal};
use serde::{Deserialize, Serialize};

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BadParams(pub String);

impl std::fmt::Display for BadParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameters: {}", self.0)
    }
}

impl std::error::Error for BadParams {}

/// Gamma-distributed inter-arrival times with exact target mean and CV.
///
/// # Examples
///
/// ```
/// use flexpipe_sim::dist::GammaInterarrival;
/// use flexpipe_sim::rng::SimRng;
///
/// // 20 requests/s with bursty CV = 4 arrivals.
/// let d = GammaInterarrival::from_rate_cv(20.0, 4.0).unwrap();
/// let mut rng = SimRng::seed(1);
/// let gap = d.sample(&mut rng);
/// assert!(gap.as_secs_f64() >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct GammaInterarrival {
    gamma: Gamma<f64>,
    mean_secs: f64,
    cv: f64,
}

impl GammaInterarrival {
    /// Builds from a mean inter-arrival time in seconds and a target CV.
    pub fn new(mean_secs: f64, cv: f64) -> Result<Self, BadParams> {
        if !(mean_secs.is_finite() && mean_secs > 0.0) {
            return Err(BadParams(format!(
                "mean_secs must be positive: {mean_secs}"
            )));
        }
        if !(cv.is_finite() && cv > 0.0) {
            return Err(BadParams(format!("cv must be positive: {cv}")));
        }
        // Gamma(shape k, scale θ): mean = kθ, CV = 1/sqrt(k).
        let shape = 1.0 / (cv * cv);
        let scale = mean_secs / shape;
        let gamma = Gamma::new(shape, scale)
            .map_err(|e| BadParams(format!("gamma({shape}, {scale}): {e}")))?;
        Ok(GammaInterarrival {
            gamma,
            mean_secs,
            cv,
        })
    }

    /// Builds from an arrival rate (requests per second) and a target CV.
    pub fn from_rate_cv(rate_per_sec: f64, cv: f64) -> Result<Self, BadParams> {
        if !(rate_per_sec.is_finite() && rate_per_sec > 0.0) {
            return Err(BadParams(format!("rate must be positive: {rate_per_sec}")));
        }
        Self::new(1.0 / rate_per_sec, cv)
    }

    /// Mean inter-arrival time in seconds.
    pub fn mean_secs(&self) -> f64 {
        self.mean_secs
    }

    /// Target coefficient of variation.
    pub fn cv(&self) -> f64 {
        self.cv
    }

    /// Draws one inter-arrival gap.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(self.gamma.sample(rng))
    }

    /// Draws one inter-arrival gap as fractional seconds.
    pub fn sample_secs(&self, rng: &mut SimRng) -> f64 {
        self.gamma.sample(rng).max(0.0)
    }
}

/// Exponential inter-arrival sampler (a Poisson arrival process).
#[derive(Debug, Clone)]
pub struct ExpInterarrival {
    exp: Exp<f64>,
}

impl ExpInterarrival {
    /// Builds from an arrival rate in events per second.
    pub fn from_rate(rate_per_sec: f64) -> Result<Self, BadParams> {
        Exp::new(rate_per_sec)
            .map(|exp| ExpInterarrival { exp })
            .map_err(|e| BadParams(format!("exp({rate_per_sec}): {e}")))
    }

    /// Draws one inter-arrival gap.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(self.exp.sample(rng))
    }
}

/// Log-normal sampler parameterised by its median and the σ of ln X.
///
/// Used for prompt-length distributions (Splitwise-like corpora have heavy
/// right tails well matched by a log-normal).
#[derive(Debug, Clone)]
pub struct LogNormalSampler {
    ln: LogNormal<f64>,
    median: f64,
}

impl LogNormalSampler {
    /// Builds from the distribution median and log-space sigma.
    pub fn from_median_sigma(median: f64, sigma: f64) -> Result<Self, BadParams> {
        if !(median.is_finite() && median > 0.0) {
            return Err(BadParams(format!("median must be positive: {median}")));
        }
        LogNormal::new(median.ln(), sigma)
            .map(|ln| LogNormalSampler { ln, median })
            .map_err(|e| BadParams(format!("lognormal({median}, {sigma}): {e}")))
    }

    /// The distribution median.
    pub fn median(&self) -> f64 {
        self.median
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.ln.sample(rng)
    }

    /// Draws one value, clamped into `[lo, hi]` and rounded to u64.
    pub fn sample_clamped(&self, rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
        (self.sample(rng).round() as u64).clamp(lo, hi)
    }
}

/// Summary statistics of a sample, used throughout tests and monitors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SampleStats {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observation (0 for empty samples).
    pub min: f64,
    /// Maximum observation (0 for empty samples).
    pub max: f64,
}

impl SampleStats {
    /// Computes summary statistics over `xs`.
    pub fn of(xs: &[f64]) -> SampleStats {
        if xs.is_empty() {
            return SampleStats::default();
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        SampleStats {
            count: xs.len(),
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Coefficient of variation (`std_dev / mean`), 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaps(mean: f64, cv: f64, n: usize, seed: u64) -> Vec<f64> {
        let d = GammaInterarrival::new(mean, cv).unwrap();
        let mut rng = SimRng::seed(seed);
        (0..n).map(|_| d.sample_secs(&mut rng)).collect()
    }

    #[test]
    fn gamma_hits_target_mean_and_cv() {
        for &(mean, cv) in &[(0.05, 0.5), (0.05, 1.0), (0.05, 2.0), (0.05, 4.0)] {
            let xs = gaps(mean, cv, 200_000, 42);
            let s = SampleStats::of(&xs);
            assert!(
                (s.mean - mean).abs() / mean < 0.03,
                "mean {} target {mean} (cv {cv})",
                s.mean
            );
            assert!((s.cv() - cv).abs() / cv < 0.05, "cv {} target {cv}", s.cv());
        }
    }

    #[test]
    fn cv_one_matches_exponential_shape() {
        // Gamma with CV=1 is the exponential distribution.
        let xs = gaps(1.0, 1.0, 100_000, 9);
        let below_mean = xs.iter().filter(|&&x| x < 1.0).count() as f64 / xs.len() as f64;
        // P(X < mean) for Exp = 1 - 1/e ≈ 0.632.
        assert!((below_mean - 0.632).abs() < 0.01, "got {below_mean}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(GammaInterarrival::new(0.0, 1.0).is_err());
        assert!(GammaInterarrival::new(1.0, 0.0).is_err());
        assert!(GammaInterarrival::from_rate_cv(-3.0, 1.0).is_err());
        assert!(LogNormalSampler::from_median_sigma(0.0, 1.0).is_err());
    }

    #[test]
    fn lognormal_median_is_respected() {
        let d = LogNormalSampler::from_median_sigma(1500.0, 0.8).unwrap();
        let mut rng = SimRng::seed(5);
        let mut xs: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med - 1500.0).abs() / 1500.0 < 0.03, "median {med}");
    }

    #[test]
    fn sample_clamped_stays_in_bounds() {
        let d = LogNormalSampler::from_median_sigma(100.0, 2.0).unwrap();
        let mut rng = SimRng::seed(6);
        for _ in 0..10_000 {
            let v = d.sample_clamped(&mut rng, 10, 500);
            assert!((10..=500).contains(&v));
        }
    }

    #[test]
    fn stats_of_constant_sample() {
        let s = SampleStats::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(SampleStats::of(&[]).count, 0);
    }
}
