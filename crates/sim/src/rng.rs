//! Deterministic random number generation for reproducible simulations.
//!
//! The engine deliberately does not use `rand::rngs::SmallRng` for state:
//! its algorithm is explicitly unstable across `rand` releases, while
//! experiment reproducibility is a hard requirement here. Instead this module
//! implements xoshiro256++ (public domain, Blackman & Vigna) directly and
//! exposes it through [`rand::RngCore`], so all of `rand_distr` still works
//! on top.
//!
//! Every stochastic component receives its own [`SimRng`] derived from a root
//! seed and a stream label, so adding a new consumer never perturbs the
//! random stream observed by existing ones.

use rand::RngCore;

/// SplitMix64 step, used for seed expansion (reference implementation).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator with stable cross-version output.
///
/// # Examples
///
/// ```
/// use flexpipe_sim::rng::SimRng;
/// use rand::RngCore;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256++ must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        SimRng { s }
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// The derivation hashes (seed material, label) so streams with
    /// different labels are decorrelated, and the parent stream is left
    /// untouched — callers can derive children in any order.
    pub fn stream(&self, label: u64) -> SimRng {
        let mut sm = self.s[0] ^ self.s[2].rotate_left(17) ^ label.wrapping_mul(0xD1B54A32D192ED03);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        SimRng { s }
    }

    /// Derives a child stream from a string label (e.g. a component name).
    pub fn stream_named(&self, label: &str) -> SimRng {
        // FNV-1a over the label bytes; stable and dependency-free.
        let mut h: u64 = 0xCBF29CE484222325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001B3);
        }
        self.stream(h)
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits to mantissa, the standard conversion.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire-style rejection to avoid modulo bias.
        let mut x = self.next();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot pick from an empty slice");
        &slice[self.below(slice.len() as u64) as usize]
    }

    /// Fisher-Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent_of_derivation_order() {
        let root = SimRng::seed(99);
        let mut a1 = root.stream(1);
        let mut a2 = root.stream(2);
        let root2 = SimRng::seed(99);
        let mut b2 = root2.stream(2);
        let mut b1 = root2.stream(1);
        assert_eq!(a1.next_u64(), b1.next_u64());
        assert_eq!(a2.next_u64(), b2.next_u64());
    }

    #[test]
    fn named_streams_differ() {
        let root = SimRng::seed(5);
        let mut g = root.stream_named("gateway");
        let mut c = root.stream_named("cluster");
        assert_ne!(g.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = SimRng::seed(11);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(5) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed(4);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn known_answer_vector_is_stable() {
        // Pins the generator output so accidental algorithm changes are caught.
        let mut r = SimRng::seed(0);
        let first = r.next_u64();
        let mut r2 = SimRng::seed(0);
        let again = r2.next_u64();
        assert_eq!(first, again);
        // Mean of many uniform draws concentrates near 0.5.
        let mut acc = 0.0;
        let mut r3 = SimRng::seed(123);
        for _ in 0..50_000 {
            acc += r3.f64();
        }
        assert!((acc / 50_000.0 - 0.5).abs() < 0.01);
    }
}
