//! Tetris-like baseline: memory-efficient serverless hosting.
//!
//! Tetris (ATC '22) maximises the number of instances a fleet can host by
//! deduplicating tensors and packing aggressively; it has no
//! pipeline-parallel specialisation and no fast-load path. Here: replicas
//! pack onto the busiest feasible GPUs (memory efficiency first), pay a
//! sharing multiplier, load cold from storage, and scale reactively with
//! deliberately long patience — reproducing the Fig. 12 signature of high
//! GPU utilisation with poor goodput under variable load.

use flexpipe_serving::{ControlPolicy, Ctx, InstanceState, Placement};

use crate::common::{packed_gpus, quiet_gpus};

/// Tetris-like configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TetrisConfig {
    /// Pipeline depth of every replica (memory packing favours few
    /// stages).
    pub stages: u32,
    /// Replicas kept at all times.
    pub min_replicas: u32,
    /// Hard replica cap.
    pub max_replicas: u32,
    /// Queue depth that triggers a scale-out.
    pub queue_hi: usize,
    /// Ticks the queue must stay high before scaling (packing systems
    /// provision conservatively).
    pub scale_patience: u32,
    /// Sharing/dedup bookkeeping multiplier on compute.
    pub interference: f64,
    /// Ticks of idleness before scaling in.
    pub idle_patience: u32,
}

impl Default for TetrisConfig {
    fn default() -> Self {
        TetrisConfig {
            stages: 4,
            min_replicas: 3,
            max_replicas: 5,
            queue_hi: 40,
            scale_patience: 12,
            interference: 1.35,
            idle_patience: 15,
        }
    }
}

/// The Tetris-like policy.
#[derive(Debug, Clone)]
pub struct TetrisLike {
    cfg: TetrisConfig,
    high_ticks: u32,
    idle_ticks: u32,
}

impl TetrisLike {
    /// Creates the policy.
    pub fn new(cfg: TetrisConfig) -> Self {
        TetrisLike {
            cfg,
            high_ticks: 0,
            idle_ticks: 0,
        }
    }

    fn spawn_packed(&self, ctx: &mut Ctx<'_>, standing: bool) {
        let ranges = match ctx.state.lattice().level(self.cfg.stages) {
            Some(l) => l.ranges.clone(),
            None => return,
        };
        let min_free = ranges
            .iter()
            .map(|&r| ctx.state.cost().stage_mem_bytes(ctx.state.graph(), r, 48))
            .max()
            .unwrap_or(0);
        let placement = match packed_gpus(ctx, ranges.len(), min_free, &[]) {
            Some(gpus) => Placement::Explicit(gpus),
            None => Placement::FirstFit,
        };
        let spawned = if standing {
            ctx.spawn_prewarmed(self.cfg.stages, placement)
        } else {
            ctx.spawn(self.cfg.stages, placement)
        };
        if let Ok(id) = spawned {
            ctx.set_compute_multiplier(id, self.cfg.interference);
        }
    }
}

impl ControlPolicy for TetrisLike {
    fn name(&self) -> &'static str {
        "Tetris"
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_always_on(quiet_gpus(
            ctx,
            (self.cfg.min_replicas * self.cfg.stages) as usize,
        ));
        for _ in 0..self.cfg.min_replicas {
            self.spawn_packed(ctx, true);
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        // Packed replicas suffer the same correlated-burst interference as
        // any multiplexer (Eq. 9): contention grows with CV².
        let (_, cv, _) = ctx.monitor();
        let mult = (self.cfg.interference * (1.0 + 0.08 * cv * cv)).min(2.5);
        let queue = ctx.queue_len();
        let instances = ctx.instances();
        for inst in &instances {
            ctx.set_compute_multiplier(inst.id, mult);
        }
        let live = instances
            .iter()
            .filter(|i| matches!(i.state, InstanceState::Serving | InstanceState::Loading))
            .count() as u32;

        if queue >= self.cfg.queue_hi {
            self.high_ticks += 1;
            self.idle_ticks = 0;
            if self.high_ticks >= self.cfg.scale_patience && live < self.cfg.max_replicas {
                self.spawn_packed(ctx, false);
                self.high_ticks = 0;
            }
            return;
        }
        self.high_ticks = 0;

        let total_active: u32 = instances.iter().map(|i| i.active_requests).sum();
        if queue == 0 && total_active == 0 && live > self.cfg.min_replicas {
            self.idle_ticks += 1;
            if self.idle_ticks >= self.cfg.idle_patience {
                if let Some(victim) = instances
                    .iter()
                    .filter(|i| i.state == InstanceState::Serving)
                    .min_by_key(|i| (i.active_requests, i.id))
                {
                    ctx.retire(victim.id);
                }
                self.idle_ticks = 0;
            }
        } else {
            self.idle_ticks = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_is_slower_than_serverlessllm() {
        let t = TetrisConfig::default();
        assert!(t.scale_patience > 1, "tetris must scale with patience");
        assert!(t.interference > 1.0);
    }
}
