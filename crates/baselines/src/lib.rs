//! Policy-level reimplementations of the systems FlexPipe is evaluated
//! against (§9), all running on the identical `flexpipe-serving` substrate:
//!
//! - [`static_pipeline`] — the fixed-configuration baseline of §3.3;
//! - [`alpaserve`] — offline-optimised placement, provisioned for peak,
//!   never reconfigured;
//! - [`muxserve`] — statistical GPU multiplexing sized near the mean;
//! - [`serverlessllm`] — fast checkpoint loading with reactive
//!   whole-instance scaling;
//! - [`tetris`] — memory-efficient packing with slow reactive scaling.
//!
//! Each captures the salient *policy* of the original system; the paper's
//! comparison is about control decisions, so mechanism differences
//! (CUDA kernels, container runtimes) deliberately stay on the shared
//! substrate.

#![warn(missing_docs)]

pub mod alpaserve;
pub mod common;
pub mod muxserve;
pub mod serverlessllm;
pub mod static_pipeline;
pub mod tetris;

pub use alpaserve::{AlpaServeConfig, AlpaServeLike};
pub use muxserve::{MuxServeConfig, MuxServeLike};
pub use serverlessllm::{ServerlessLlmConfig, ServerlessLlmLike};
pub use static_pipeline::StaticPipeline;
pub use tetris::{TetrisConfig, TetrisLike};
