//! MuxServe-like baseline: spatial-temporal GPU multiplexing.
//!
//! MuxServe (ICML '24) maximises utilisation by statistically multiplexing
//! models onto shared GPUs. On this substrate that translates to: size the
//! deployment near the *mean* (betting on sharing to absorb variance),
//! place replicas onto already-subscribed GPUs (packing), and accept a
//! constant interference multiplier. Static pipelines; no elasticity —
//! under bursty traffic the shared devices contend exactly when every
//! tenant spikes together, which is the paper's §6.2 argument for the
//! CV²-scaled multiplexing penalty.

use flexpipe_serving::{ControlPolicy, Ctx, Placement};

use crate::common::{estimate_capacity, packed_gpus, quiet_gpus};

/// MuxServe-like configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MuxServeConfig {
    /// Pipeline depth of every replica.
    pub stages: u32,
    /// Historical mean rate used for sizing.
    pub expected_rate: f64,
    /// Sizing margin over the mean (well below peak — multiplexing bets on
    /// statistical smoothing).
    pub margin: f64,
    /// Interference multiplier from sharing GPUs with co-located tenants.
    pub interference: f64,
    /// Mean prompt tokens for capacity estimation.
    pub mean_prompt_tokens: f64,
    /// Mean output tokens for capacity estimation.
    pub mean_output_tokens: f64,
    /// Decode micro-batch for capacity estimation.
    pub ubatch: u32,
    /// Hop estimate, seconds.
    pub hop_secs: f64,
}

impl Default for MuxServeConfig {
    fn default() -> Self {
        MuxServeConfig {
            stages: 4,
            expected_rate: 20.0,
            margin: 1.6,
            interference: 1.25,
            mean_prompt_tokens: 1540.0,
            mean_output_tokens: 64.0,
            ubatch: 128,
            hop_secs: 0.002,
        }
    }
}

/// The MuxServe-like policy.
#[derive(Debug, Clone)]
pub struct MuxServeLike {
    cfg: MuxServeConfig,
}

impl MuxServeLike {
    /// Creates the policy.
    pub fn new(cfg: MuxServeConfig) -> Self {
        MuxServeLike { cfg }
    }
}

impl ControlPolicy for MuxServeLike {
    fn name(&self) -> &'static str {
        "MuxServe"
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        // Multiplexed GPUs degrade quadratically with burstiness — the
        // co-located tenants spike together (the Eq. 9 effect FlexPipe's
        // allocation optimizer explicitly prices; a static multiplexer
        // simply suffers it).
        let (_, cv, _) = ctx.monitor();
        let mult = (self.cfg.interference * (1.0 + 0.08 * cv * cv)).min(2.5);
        for inst in ctx.instances() {
            ctx.set_compute_multiplier(inst.id, mult);
        }
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        let ranges = match ctx.state.lattice().level(self.cfg.stages) {
            Some(l) => l.ranges.clone(),
            None => return,
        };
        let mu = estimate_capacity(
            ctx.state.graph(),
            ctx.state.cost(),
            &ranges,
            self.cfg.ubatch,
            self.cfg.mean_prompt_tokens,
            self.cfg.mean_output_tokens,
            self.cfg.hop_secs,
        ) / (self.cfg.interference * 1.4); // sharing + background contention
        let replicas =
            ((self.cfg.expected_rate * self.cfg.margin / mu.max(1e-9)).ceil() as u32).max(1);

        // Multiplexers hold whatever they deploy on.
        ctx.set_always_on(quiet_gpus(ctx, (replicas * self.cfg.stages) as usize));

        let min_free = ranges
            .iter()
            .map(|&r| ctx.state.cost().stage_mem_bytes(ctx.state.graph(), r, 32))
            .max()
            .unwrap_or(0);
        for _ in 0..replicas {
            // Pack onto busy GPUs (share with other tenants); fall back to
            // first-fit if packing finds nothing.
            let placement = match packed_gpus(ctx, ranges.len(), min_free, &[]) {
                Some(gpus) => Placement::Explicit(gpus),
                None => Placement::FirstFit,
            };
            match ctx.spawn_prewarmed(self.cfg.stages, placement) {
                Ok(id) => ctx.set_compute_multiplier(id, self.cfg.interference),
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_is_mean_based() {
        let cfg = MuxServeConfig::default();
        assert!(cfg.margin < 2.0, "multiplexing sizes near the mean");
        assert!(cfg.interference > 1.0);
    }
}
