//! AlpaServe-like baseline: offline pipeline optimisation over historical
//! statistics with peak provisioning.
//!
//! AlpaServe (OSDI '23) chooses model-parallel placements that maximise SLO
//! attainment for the *historical* request distribution, then serves with
//! that fixed configuration. Faithfully to the paper's critique (§1, §3.3),
//! this reimplementation: (a) receives the true long-term mean rate as its
//! "history"; (b) enumerates lattice levels offline and picks the config
//! with the lowest estimated latency that still covers peak demand;
//! (c) provisions always-on capacity for 75% of peak (§3.1's production
//! practice); (d) never reconfigures at runtime.

use flexpipe_serving::{ControlPolicy, Ctx, Placement};

use crate::common::{estimate_capacity, quiet_gpus};

/// AlpaServe-like configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlpaServeConfig {
    /// Historical mean request rate handed to the offline optimizer.
    pub expected_rate: f64,
    /// Peak-to-mean provisioning factor (capacity target).
    pub peak_factor: f64,
    /// Mean prompt tokens assumed by the offline profiler.
    pub mean_prompt_tokens: f64,
    /// Mean output tokens assumed by the offline profiler.
    pub mean_output_tokens: f64,
    /// Decode micro-batch size assumed by the offline profiler.
    pub ubatch: u32,
    /// Inter-stage hop estimate, seconds.
    pub hop_secs: f64,
    /// Fraction of peak capacity pinned always-on.
    pub always_on_fraction: f64,
}

impl Default for AlpaServeConfig {
    fn default() -> Self {
        AlpaServeConfig {
            expected_rate: 20.0,
            peak_factor: 4.0,
            mean_prompt_tokens: 1540.0,
            mean_output_tokens: 64.0,
            ubatch: 128,
            hop_secs: 0.002,
            always_on_fraction: 0.75,
        }
    }
}

/// The AlpaServe-like policy.
#[derive(Debug, Clone)]
pub struct AlpaServeLike {
    cfg: AlpaServeConfig,
    chosen_stages: Option<u32>,
    chosen_replicas: u32,
}

impl AlpaServeLike {
    /// Creates the policy.
    pub fn new(cfg: AlpaServeConfig) -> Self {
        AlpaServeLike {
            cfg,
            chosen_stages: None,
            chosen_replicas: 0,
        }
    }

    /// The offline-selected configuration (after `init`).
    pub fn chosen(&self) -> Option<(u32, u32)> {
        self.chosen_stages.map(|s| (s, self.chosen_replicas))
    }
}

impl ControlPolicy for AlpaServeLike {
    fn name(&self) -> &'static str {
        "AlpaServe"
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        let graph = ctx.state.graph();
        let cost = ctx.state.cost();
        let peak_rate = self.cfg.expected_rate * self.cfg.peak_factor;
        let fleet = ctx.state.cluster().topology().gpu_count() as u32;

        // Offline enumeration: for each lattice level, replicas needed for
        // peak and an estimated per-request latency; choose the feasible
        // config with the lowest latency, tie-broken by fewer GPUs.
        let mut best: Option<(f64, u32, u32, u32)> = None; // (latency, gpus, stages, replicas)
        for level in ctx.state.lattice().levels() {
            let mu = estimate_capacity(
                graph,
                cost,
                &level.ranges,
                self.cfg.ubatch,
                self.cfg.mean_prompt_tokens,
                self.cfg.mean_output_tokens,
                self.cfg.hop_secs,
            );
            if mu <= 0.0 {
                continue;
            }
            let replicas = (peak_rate / mu).ceil().max(1.0) as u32;
            let gpus = replicas * level.stages;
            if gpus > fleet {
                continue;
            }
            // Latency estimate: prefill traversal + per-token decode cycles.
            let cycle: f64 = level
                .ranges
                .iter()
                .map(|&r| {
                    cost.stage_compute(graph, r, u64::from(self.cfg.ubatch))
                        .as_secs_f64()
                })
                .sum::<f64>()
                + f64::from(level.stages.saturating_sub(1)) * self.cfg.hop_secs;
            let prefill: f64 = level
                .ranges
                .iter()
                .map(|&r| {
                    cost.stage_compute(graph, r, self.cfg.mean_prompt_tokens as u64)
                        .as_secs_f64()
                })
                .sum::<f64>();
            let latency = prefill + self.cfg.mean_output_tokens * cycle;
            let cand = (latency, gpus, level.stages, replicas);
            if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                best = Some(cand);
            }
        }
        let Some((_, gpus, stages, replicas)) = best else {
            return;
        };
        self.chosen_stages = Some(stages);
        self.chosen_replicas = replicas;

        // Production practice: 75% of peak capacity always-on.
        let pinned_count = ((f64::from(gpus) * self.cfg.always_on_fraction).ceil() as usize).max(1);
        ctx.set_always_on(quiet_gpus(ctx, pinned_count));

        for _ in 0..replicas {
            if ctx.spawn_prewarmed(stages, Placement::FirstFit).is_err() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_production_like() {
        let cfg = AlpaServeConfig::default();
        assert!((cfg.always_on_fraction - 0.75).abs() < 1e-9);
        assert!(cfg.peak_factor > 1.0);
        let p = AlpaServeLike::new(cfg);
        assert!(p.chosen().is_none(), "chosen only after init");
    }
}
