//! ServerlessLLM-like baseline: fast checkpoint loading + reactive
//! whole-instance scaling.
//!
//! ServerlessLLM (OSDI '24) attacks cold starts with a multi-tier
//! checkpoint store (host-memory staging, loading-optimised formats) and
//! locality-aware scheduling, but scales in whole static-pipeline
//! instances reactively on queue depth. Here: checkpoints are pre-staged
//! into host memory on a set of servers (so loads run at PCIe speed —
//! their headline win), spawns prefer those servers, and scaling triggers
//! when the gateway queue crosses thresholds. No pipeline reconfiguration.

use flexpipe_cluster::{GpuId, ServerId};
use flexpipe_serving::{ControlPolicy, Ctx, InstanceState, Placement};

use crate::common::quiet_gpus;

/// ServerlessLLM-like configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerlessLlmConfig {
    /// Pipeline depth of every replica.
    pub stages: u32,
    /// Replicas kept at all times.
    pub min_replicas: u32,
    /// Hard replica cap.
    pub max_replicas: u32,
    /// Queue depth that triggers a scale-out.
    pub queue_hi: usize,
    /// Consecutive idle ticks before scaling in.
    pub idle_patience: u32,
    /// Servers to pre-stage checkpoints on.
    pub prewarm_servers: u32,
    /// Fraction of (min-replica) capacity pinned always-on.
    pub always_on_fraction: f64,
}

impl Default for ServerlessLlmConfig {
    fn default() -> Self {
        ServerlessLlmConfig {
            stages: 4,
            min_replicas: 1,
            max_replicas: 4,
            queue_hi: 32,
            idle_patience: 20,
            prewarm_servers: 6,
            always_on_fraction: 0.75,
        }
    }
}

/// The ServerlessLLM-like policy.
#[derive(Debug, Clone)]
pub struct ServerlessLlmLike {
    cfg: ServerlessLlmConfig,
    idle_ticks: u32,
    prewarmed: Vec<ServerId>,
}

impl ServerlessLlmLike {
    /// Creates the policy.
    pub fn new(cfg: ServerlessLlmConfig) -> Self {
        ServerlessLlmLike {
            cfg,
            idle_ticks: 0,
            prewarmed: Vec::new(),
        }
    }

    fn prewarm(&mut self, ctx: &mut Ctx<'_>) {
        if self.cfg.prewarm_servers == 0 {
            return; // no fast-load tier configured
        }
        let ranges = match ctx.state.lattice().level(self.cfg.stages) {
            Some(l) => l.ranges.clone(),
            None => return,
        };
        if self.prewarmed.is_empty() {
            // Spread stage checkpoints across distinct multi-GPU servers.
            let servers: Vec<ServerId> = (0..ctx.state.cluster().topology().server_count())
                .map(|s| ServerId(s as u32))
                .take(self.cfg.prewarm_servers as usize)
                .collect();
            self.prewarmed = servers;
        }
        for (i, &r) in ranges.iter().enumerate() {
            let server = self.prewarmed[i % self.prewarmed.len()];
            let _ = ctx.prewarm_host_cache(r, server);
        }
    }

    fn spawn_preferring_prewarmed(&self, ctx: &mut Ctx<'_>, standing: bool) -> bool {
        let ranges = match ctx.state.lattice().level(self.cfg.stages) {
            Some(l) => l.ranges.clone(),
            None => return false,
        };
        // Locality-aware: for each stage, try a free GPU on the server
        // holding its checkpoint.
        let mut gpus: Vec<GpuId> = Vec::with_capacity(ranges.len());
        let in_use = ctx.state.gpus_in_use().clone();
        for &r in &ranges {
            let need = ctx.state.cost().stage_mem_bytes(ctx.state.graph(), r, 8);
            let prefer = ctx.state.is_cached(r);
            let cluster = ctx.state.cluster();
            let pick = cluster
                .topology()
                .gpus()
                .iter()
                .map(|g| g.id)
                .filter(|g| !in_use.contains(g) && !gpus.contains(g))
                .filter(|&g| cluster.free_mem(g) >= need)
                .min_by_key(|&g| {
                    let on_prewarmed = Some(cluster.topology().gpu(g).server) == prefer;
                    (!on_prewarmed, g.0)
                });
            match pick {
                Some(g) => gpus.push(g),
                None => return false,
            }
        }
        if standing {
            ctx.spawn_prewarmed(self.cfg.stages, Placement::Explicit(gpus))
                .is_ok()
        } else {
            ctx.spawn(self.cfg.stages, Placement::Explicit(gpus))
                .is_ok()
        }
    }
}

impl ControlPolicy for ServerlessLlmLike {
    fn name(&self) -> &'static str {
        "ServerlessLLM"
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        let pinned = ((f64::from(self.cfg.min_replicas * self.cfg.stages)
            * self.cfg.always_on_fraction)
            .ceil() as usize)
            .max(1);
        ctx.set_always_on(quiet_gpus(ctx, pinned));
        self.prewarm(ctx);
        for _ in 0..self.cfg.min_replicas {
            if !self.spawn_preferring_prewarmed(ctx, true) {
                let _ = ctx.spawn_prewarmed(self.cfg.stages, Placement::FirstFit);
            }
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        // Keep checkpoints staged (TTL refresh).
        self.prewarm(ctx);

        let queue = ctx.queue_len();
        let instances = ctx.instances();
        let live = instances
            .iter()
            .filter(|i| matches!(i.state, InstanceState::Serving | InstanceState::Loading))
            .count() as u32;

        if queue >= self.cfg.queue_hi && live < self.cfg.max_replicas {
            if !self.spawn_preferring_prewarmed(ctx, false) {
                let _ = ctx.spawn(self.cfg.stages, Placement::FirstFit);
            }
            self.idle_ticks = 0;
            return;
        }

        // Scale in when the remaining replicas could absorb the load with
        // room to spare (utilisation-based; waiting for full idleness never
        // triggers under continuous traffic).
        let total_active: u32 = instances.iter().map(|i| i.active_requests).sum();
        let shrunk_capacity: u32 = instances
            .iter()
            .filter(|i| i.state == InstanceState::Serving)
            .map(|i| i.batch_cap)
            .sum::<u32>()
            .saturating_sub(
                instances
                    .iter()
                    .filter(|i| i.state == InstanceState::Serving)
                    .map(|i| i.batch_cap)
                    .min()
                    .unwrap_or(0),
            );
        let underloaded = queue == 0 && u64::from(total_active) * 4 < u64::from(shrunk_capacity);
        if underloaded && live > self.cfg.min_replicas {
            self.idle_ticks += 1;
            if self.idle_ticks >= self.cfg.idle_patience {
                if let Some(victim) = instances
                    .iter()
                    .filter(|i| i.state == InstanceState::Serving)
                    .min_by_key(|i| (i.active_requests, i.id))
                {
                    ctx.retire(victim.id);
                }
                self.idle_ticks = 0;
            }
        } else {
            self.idle_ticks = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let cfg = ServerlessLlmConfig::default();
        assert!(cfg.queue_hi > 0);
        assert!(cfg.max_replicas >= cfg.min_replicas);
        let p = ServerlessLlmLike::new(cfg);
        assert_eq!(p.name(), "ServerlessLLM");
    }
}
