//! A fixed pipeline deployment: the §3.3 motivation baseline.
//!
//! Deploys `replicas` instances at a fixed stage count and never adapts —
//! the configuration every static system degenerates to once traffic
//! deviates from its planning assumptions.

use flexpipe_serving::{ControlPolicy, Ctx, Placement};

use crate::common::quiet_gpus;

/// The static pipeline policy.
#[derive(Debug, Clone)]
pub struct StaticPipeline {
    /// Pipeline depth.
    pub stages: u32,
    /// Data-parallel replicas.
    pub replicas: u32,
}

impl StaticPipeline {
    /// Creates the policy.
    pub fn new(stages: u32, replicas: u32) -> Self {
        StaticPipeline { stages, replicas }
    }
}

impl ControlPolicy for StaticPipeline {
    fn name(&self) -> &'static str {
        "StaticPipeline"
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        // Static systems hold their GPUs permanently: pin exactly what the
        // deployment needs.
        let needed = (self.stages * self.replicas) as usize;
        let pinned = quiet_gpus(ctx, needed);
        ctx.set_always_on(pinned);
        for _ in 0..self.replicas {
            if ctx
                .spawn_prewarmed(self.stages, Placement::FirstFit)
                .is_err()
            {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor() {
        let p = StaticPipeline::new(4, 2);
        assert_eq!(p.stages, 4);
        assert_eq!(p.replicas, 2);
        assert_eq!(p.name(), "StaticPipeline");
    }
}
