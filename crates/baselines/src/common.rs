//! Shared helpers for the baseline policies.

use flexpipe_cluster::GpuId;
use flexpipe_model::{CostModel, ModelGraph, OpRange};
use flexpipe_serving::Ctx;

/// Rough per-instance request-rate capacity of a pipeline configuration.
///
/// Mirrors the profiling arithmetic the systems under comparison all use
/// for capacity planning: the bottleneck stage's busy time per request,
/// counting prefill and decode compute plus per-pass overheads amortised
/// over micro-batch members.
pub fn estimate_capacity(
    graph: &ModelGraph,
    cost: &CostModel,
    ranges: &[OpRange],
    ubatch: u32,
    mean_prompt_tokens: f64,
    mean_output_tokens: f64,
    hop_secs: f64,
) -> f64 {
    let chunk_tokens = 1024u32;
    // Plan against memory realistically free under background tenants.
    let gpu_mem = 60u64 << 30;
    let batch_cap = ranges
        .iter()
        .map(|&r| cost.max_batch(graph, r, gpu_mem))
        .min()
        .unwrap_or(1)
        .max(1);
    let decode_batch = ubatch.min(batch_cap).max(1);
    let busy_per_req = ranges
        .iter()
        .map(|&r| {
            let chunk_pass = cost
                .stage_compute(graph, r, u64::from(chunk_tokens))
                .as_secs_f64()
                + hop_secs;
            let decode_pass = cost
                .stage_compute(graph, r, u64::from(decode_batch))
                .as_secs_f64()
                + hop_secs;
            mean_prompt_tokens * chunk_pass / f64::from(chunk_tokens)
                + mean_output_tokens * decode_pass / f64::from(decode_batch)
        })
        .fold(0.0, f64::max);
    // Autoregressive bound: cap/cycle limits coarse configurations.
    let decode_cycle: f64 = ranges
        .iter()
        .map(|&r| {
            cost.stage_compute(graph, r, u64::from(decode_batch))
                .as_secs_f64()
                + hop_secs
        })
        .sum();
    let cycle_bound = mean_output_tokens * decode_cycle / f64::from(batch_cap);
    1.0 / busy_per_req.max(cycle_bound).max(1e-9)
}

/// Picks the always-on GPU set: the first `count` least-loaded devices.
pub fn quiet_gpus(ctx: &Ctx<'_>, count: usize) -> Vec<GpuId> {
    let cluster = ctx.state.cluster();
    let mut ids: Vec<GpuId> = cluster.topology().gpus().iter().map(|g| g.id).collect();
    ids.sort_by_key(|&g| {
        let l = cluster.load(g);
        (l.bg_mem, (l.bg_sm * 1e6) as u64, g.0)
    });
    ids.truncate(count);
    ids
}

/// Picks GPUs *preferring already-subscribed devices* (bin-packing style,
/// as memory-efficiency-oriented systems do), subject to fitting
/// `min_free` bytes; skips GPUs in `exclude`.
pub fn packed_gpus(
    ctx: &Ctx<'_>,
    count: usize,
    min_free: u64,
    exclude: &[GpuId],
) -> Option<Vec<GpuId>> {
    let cluster = ctx.state.cluster();
    let in_use = ctx.state.gpus_in_use();
    let mut candidates: Vec<GpuId> = cluster
        .topology()
        .gpus()
        .iter()
        .map(|g| g.id)
        .filter(|g| !in_use.contains(g) && !exclude.contains(g))
        .filter(|&g| cluster.free_mem(g) >= min_free)
        .collect();
    // Busiest-first: highest subscription, then least free memory.
    candidates.sort_by_key(|&g| {
        let l = cluster.load(g);
        (std::cmp::Reverse(l.bg_services), cluster.free_mem(g), g.0)
    });
    candidates.truncate(count);
    (candidates.len() == count).then_some(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexpipe_model::{even_layer_ranges, zoo};

    #[test]
    fn capacity_estimate_scales_with_depth() {
        let g = zoo::opt_66b();
        let cost = CostModel::default();
        let coarse = estimate_capacity(
            &g,
            &cost,
            &even_layer_ranges(&g, 4),
            16,
            1024.0,
            64.0,
            0.002,
        );
        let fine = estimate_capacity(
            &g,
            &cost,
            &even_layer_ranges(&g, 16),
            16,
            1024.0,
            64.0,
            0.002,
        );
        assert!(fine > coarse, "fine {fine} coarse {coarse}");
        assert!(coarse > 0.0);
    }
}
