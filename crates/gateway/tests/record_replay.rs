//! Record → replay determinism: the gateway's headline contract.
//!
//! A live run (wall-paced or virtual) produces a recording; replaying
//! that recording must reproduce every per-shard report byte for byte,
//! at every shard count. These tests pin exactly that, plus the
//! self-check that a replay re-assembles the recording it was given.

use flexpipe_bench::PaperSetup;
use flexpipe_gateway::{
    replay_with, serve_virtual, serve_with, LeastLoadedSpillover, NoSpillover, Pacing,
    RecordedArrival, Recording, ServeSpec, TraceMode, RECORDING_VERSION,
};
use flexpipe_sim::{SimDuration, SimTime};

fn report_bytes(outcome: &flexpipe_gateway::ServeOutcome) -> Vec<String> {
    outcome.reports.iter().map(|r| r.to_json()).collect()
}

#[test]
fn virtual_serve_replays_byte_identically_at_1_2_4_shards() {
    let setup = PaperSetup::for_model(ServeSpec::template().model);
    for shards in [1u32, 2, 4] {
        let mut spec = ServeSpec::template();
        spec.shards = shards;
        let live = serve_virtual(&spec, &setup).unwrap();
        assert_eq!(live.reports.len(), shards as usize);
        assert_eq!(
            live.recording.arrivals.len(),
            spec.schedule().len(),
            "every generated arrival must be recorded"
        );
        let total: usize = live.reports.iter().map(|r| r.completed).sum();
        assert!(total > 0, "live serve must complete requests");

        let replayed = replay_with(&live.recording, &setup, TraceMode::Off).unwrap();
        assert_eq!(
            report_bytes(&live),
            report_bytes(&replayed),
            "{shards}-shard replay must be byte-identical"
        );
        assert_eq!(
            live.recording.to_json(),
            replayed.recording.to_json(),
            "replay must re-assemble the recording it was given"
        );

        // Virtual pacing uses no wall clock at all: a second live run is
        // byte-identical too.
        let again = serve_virtual(&spec, &setup).unwrap();
        assert_eq!(report_bytes(&live), report_bytes(&again));
    }
}

#[test]
fn wall_paced_serve_replays_byte_identically() {
    let mut spec = ServeSpec::template();
    spec.name = "live-wall".into();
    spec.horizon_secs = 1.0;
    spec.warmup_secs = 0.5;
    spec.rate = 30.0;
    let setup = PaperSetup::for_model(spec.model);
    // 50x fast-forward: ~1.5 virtual seconds in ~30 ms of wall time.
    let live = serve_with(
        &spec,
        Pacing::Wall { time_scale: 50.0 },
        &NoSpillover,
        &setup,
        TraceMode::Off,
    )
    .unwrap();
    assert!(!live.recording.arrivals.is_empty());
    // Wall-derived stamps are monotone per shard by construction.
    for shard in 0..spec.shards {
        let stamps: Vec<_> = live
            .recording
            .arrivals
            .iter()
            .filter(|a| a.shard == shard)
            .map(|a| a.stamp)
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }

    let replayed = replay_with(&live.recording, &setup, TraceMode::Off).unwrap();
    assert_eq!(
        report_bytes(&live),
        report_bytes(&replayed),
        "a wall-paced run must replay byte-identically from its recording"
    );
    assert_eq!(live.recording.to_json(), replayed.recording.to_json());
}

#[test]
fn replay_accepts_globally_non_monotone_per_shard_stamps() {
    // Wall-derived stamps are monotone per shard, not globally: shard 1
    // can absorb its first request long before shard 0 dequeues a
    // backlog. Replay must accept such a recording (regression: the
    // schedule rebuild used to assert global arrival order).
    let spec = ServeSpec::template();
    let setup = PaperSetup::for_model(spec.model);
    let slo = SimDuration::from_secs_f64(2.0);
    let arrival = |id, shard, secs| RecordedArrival {
        id,
        shard,
        stamp: SimTime::from_secs_f64(secs),
        prompt_tokens: 64,
        output_tokens: 4,
        slo,
    };
    let recording = Recording {
        version: RECORDING_VERSION,
        spec,
        arrivals: vec![
            arrival(0, 0, 0.5),
            arrival(1, 1, 0.1),
            arrival(2, 0, 0.6),
            arrival(3, 1, 0.2),
        ],
    };
    let a = replay_with(&recording, &setup, TraceMode::Off).unwrap();
    assert_eq!(
        a.recording.to_json(),
        recording.to_json(),
        "replay must re-assemble the recording it was given"
    );
    let b = replay_with(&recording, &setup, TraceMode::Off).unwrap();
    assert_eq!(report_bytes(&a), report_bytes(&b));
}

#[test]
fn spillover_placements_are_recorded_and_replay_faithfully() {
    let mut spec = ServeSpec::template();
    spec.name = "live-spill".into();
    let setup = PaperSetup::for_model(spec.model);
    // Threshold 0: any depth imbalance spills. Placements depend on racy
    // live depths — the point is that whatever happened was recorded and
    // replays identically.
    let live = serve_with(
        &spec,
        Pacing::Virtual,
        &LeastLoadedSpillover { threshold: 0 },
        &setup,
        TraceMode::Off,
    )
    .unwrap();
    let replayed = replay_with(&live.recording, &setup, TraceMode::Off).unwrap();
    assert_eq!(report_bytes(&live), report_bytes(&replayed));
    assert_eq!(live.recording.to_json(), replayed.recording.to_json());
}
