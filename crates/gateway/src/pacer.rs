//! Wall-clock pacing: the bridge between real time and virtual time.
//!
//! A [`Pacer`] anchors a run at construction and maps elapsed wall time
//! onto [`SimTime`] through a `time_scale` factor (virtual seconds per
//! wall second). `time_scale = 1.0` serves in real time; larger values
//! fast-forward (a 60 s virtual stream in 6 s of wall time at 10×),
//! which is how CI keeps live smoke runs short without changing the
//! virtual-time semantics of anything downstream.
//!
//! The pacer is the *only* wall-clock ingredient of a live run. Every
//! stamp it produces is recorded, so replay never consults a clock —
//! that is the whole record/replay determinism story.

use flexpipe_sim::SimTime;

use std::time::{Duration, Instant};

/// Maps wall time onto virtual time from a fixed anchor.
#[derive(Debug)]
pub struct Pacer {
    start: Instant,
    time_scale: f64,
}

impl Pacer {
    /// Anchors a pacer now. `time_scale` is virtual seconds per wall
    /// second and must be finite and positive.
    pub fn new(time_scale: f64) -> Pacer {
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "time scale must be finite and positive"
        );
        Pacer {
            start: Instant::now(),
            time_scale,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs_f64(self.start.elapsed().as_secs_f64() * self.time_scale)
    }

    /// Sleeps until virtual time `t` (no-op when already past it): the
    /// open-loop generator's release valve.
    pub fn sleep_until(&self, t: SimTime) {
        let due = t.as_secs_f64() / self.time_scale;
        let elapsed = self.start.elapsed().as_secs_f64();
        if due > elapsed {
            std::thread::sleep(Duration::from_secs_f64(due - elapsed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_scale_stretches_virtual_time() {
        let pacer = Pacer::new(100.0);
        std::thread::sleep(Duration::from_millis(5));
        let t = pacer.now();
        // 5 ms of wall at 100x is at least 0.5 virtual seconds.
        assert!(t >= SimTime::from_secs_f64(0.5), "got {t:?}");
    }

    #[test]
    fn sleep_until_reaches_the_target() {
        let pacer = Pacer::new(1000.0);
        pacer.sleep_until(SimTime::from_secs_f64(2.0)); // 2 ms of wall
        assert!(pacer.now() >= SimTime::from_secs_f64(2.0));
        // Sleeping into the past returns immediately.
        pacer.sleep_until(SimTime::ZERO);
    }
}
