//! `fleet bench --live`: the shard-scaling benchmark and its QPS gate
//! inputs.
//!
//! One pinned workload stream is served at each shard count (1 → 2 → 4
//! by default) in virtual pacing — deterministic stamps, engines
//! running flat out — so the *simulated* outcome of every row is
//! byte-stable while the wall clock measures how much real throughput
//! parallel shards buy. Following the campaign-timing precedent, the
//! two kinds of numbers never share a file: [`LiveBenchArtifact`] is
//! sim-derived only (byte-compared in CI), wall-clock QPS and scaling
//! factors live in [`LiveBenchTiming`] (gated, never byte-compared).

use serde::{Deserialize, Serialize};

use std::time::Instant;

use crate::record::{ServeSpec, ShardPolicy};
use crate::serve::{serve_virtual, ServeOutcome};
use crate::{GatewayError, PaperSetup};

/// Current [`LiveBenchArtifact::version`].
pub const LIVE_BENCH_VERSION: u32 = 1;

/// One shard count's deterministic results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveBenchRow {
    /// Shard count of this row.
    pub shards: u32,
    /// Total arrivals absorbed (identical across rows by construction).
    pub arrivals: u64,
    /// Steady-state completions summed across shards.
    pub completed: usize,
    /// Steady-state within-SLO completions summed across shards.
    pub within_slo: usize,
    /// Worst per-shard steady-state p50 TTFT, seconds.
    pub p50_ttft: f64,
    /// Worst per-shard steady-state p99 TTFT, seconds.
    pub p99_ttft: f64,
    /// Engine events summed across shards.
    pub events: u64,
    /// Per-shard completion counts (load-balance visibility).
    pub per_shard_completed: Vec<usize>,
}

/// The byte-stable scaling artifact: spec + one row per shard count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveBenchArtifact {
    /// Format version ([`LIVE_BENCH_VERSION`]).
    pub version: u32,
    /// The base spec (its `shards` field is overridden per row).
    pub spec: ServeSpec,
    /// Per-shard-count results, in ascending shard order.
    pub rows: Vec<LiveBenchRow>,
}

impl LiveBenchArtifact {
    /// Serializes to pretty JSON with a trailing newline (the
    /// byte-compared artifact form).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("artifact serializes");
        s.push('\n');
        s
    }

    /// Parses and version-checks an artifact.
    pub fn from_json(text: &str) -> Result<LiveBenchArtifact, GatewayError> {
        let a: LiveBenchArtifact = serde_json::from_str(text)
            .map_err(|e| GatewayError(format!("live bench artifact: {e}")))?;
        if a.version != LIVE_BENCH_VERSION {
            return Err(GatewayError(format!(
                "live bench artifact is format version {} (this build expects {})",
                a.version, LIVE_BENCH_VERSION
            )));
        }
        Ok(a)
    }
}

/// One shard count's wall-clock measurement (never byte-compared).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveBenchTiming {
    /// Shard count measured.
    pub shards: u32,
    /// Wall seconds to serve the full stream.
    pub wall_secs: f64,
    /// Sustained throughput: completions per wall second.
    pub qps: f64,
    /// Throughput relative to the single-shard row.
    pub scaling: f64,
}

/// A finished live bench: artifact + timings.
pub struct LiveBenchOutcome {
    /// The deterministic artifact.
    pub artifact: LiveBenchArtifact,
    /// Wall-clock rows, aligned with the artifact's.
    pub timing: Vec<LiveBenchTiming>,
}

/// The pinned standing-fleet workload the CI scaling gate runs: a
/// 4-replica single-stage Llama2-7B fleet (divisible across 1, 2 and 4
/// shards) under a heavy short stream, so engine execution — the part
/// sharding parallelizes — dominates wall time.
pub fn pinned_live_spec() -> ServeSpec {
    ServeSpec {
        name: "live-scaling".into(),
        seed: 11,
        shards: 1,
        horizon_secs: 1800.0,
        warmup_secs: 5.0,
        rate: 120.0,
        cv: 2.0,
        lengths: flexpipe_workload::LengthProfile::fixed(256, 64),
        nodes: 12,
        total_gpus: 16,
        servers_per_rack: 4,
        policy: ShardPolicy::Static {
            stages: 1,
            replicas: 4,
        },
        // Small micro-batches: more engine passes per generated token,
        // keeping per-shard sim execution (the parallelizable part) far
        // above channel/thread orchestration cost.
        ubatch_size: 8,
        ..ServeSpec::template()
    }
}

/// Serves the base spec once per shard count and assembles artifact +
/// timings. Every row streams the *same* schedule (the spec's seed is
/// shard-count independent); shard membership comes from the consistent
/// ring, so rows differ only in how the stream is partitioned.
pub fn run_live_bench(
    base: &ServeSpec,
    shard_counts: &[u32],
    setup: &PaperSetup,
) -> Result<LiveBenchOutcome, GatewayError> {
    if shard_counts.is_empty() {
        return Err(GatewayError(
            "live bench needs at least one shard count".into(),
        ));
    }
    let mut rows = Vec::with_capacity(shard_counts.len());
    let mut timing: Vec<LiveBenchTiming> = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let mut spec = base.clone();
        spec.shards = shards;
        spec.validate()?;
        let started = Instant::now();
        let outcome = serve_virtual(&spec, setup)?;
        let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
        let row = summarize_row(shards, &outcome);
        let qps = row.completed as f64 / wall_secs;
        let base_qps = timing.first().map_or(qps, |t| t.qps);
        timing.push(LiveBenchTiming {
            shards,
            wall_secs,
            qps,
            scaling: qps / base_qps.max(1e-9),
        });
        rows.push(row);
    }
    Ok(LiveBenchOutcome {
        artifact: LiveBenchArtifact {
            version: LIVE_BENCH_VERSION,
            spec: base.clone(),
            rows,
        },
        timing,
    })
}

fn summarize_row(shards: u32, outcome: &ServeOutcome) -> LiveBenchRow {
    let reports = &outcome.reports;
    LiveBenchRow {
        shards,
        arrivals: reports.iter().map(|r| r.arrivals).sum(),
        completed: reports.iter().map(|r| r.completed).sum(),
        within_slo: reports.iter().map(|r| r.within_slo).sum(),
        p50_ttft: reports.iter().map(|r| r.p50_ttft).fold(0.0, f64::max),
        p99_ttft: reports.iter().map(|r| r.p99_ttft).fold(0.0, f64::max),
        events: reports.iter().map(|r| r.report.events).sum(),
        per_shard_completed: reports.iter().map(|r| r.completed).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_spec_validates_at_every_gated_shard_count() {
        for shards in [1u32, 2, 4] {
            let mut spec = pinned_live_spec();
            spec.shards = shards;
            spec.validate().unwrap();
        }
    }

    #[test]
    fn artifact_round_trips_and_rejects_foreign_versions() {
        let artifact = LiveBenchArtifact {
            version: LIVE_BENCH_VERSION,
            spec: ServeSpec::template(),
            rows: vec![LiveBenchRow {
                shards: 1,
                arrivals: 10,
                completed: 9,
                within_slo: 8,
                p50_ttft: 0.1,
                p99_ttft: 0.4,
                events: 1234,
                per_shard_completed: vec![9],
            }],
        };
        let json = artifact.to_json();
        assert_eq!(LiveBenchArtifact::from_json(&json).unwrap(), artifact);
        let mut foreign = artifact.clone();
        foreign.version = LIVE_BENCH_VERSION + 1;
        assert!(LiveBenchArtifact::from_json(&foreign.to_json()).is_err());
    }
}
