//! Serve orchestration: the open-loop generator, the shard fleet, and
//! the record/replay entry points.
//!
//! A run is one [`std::thread::scope`]: `N` shard threads each driving
//! an independent engine partition through a `crate::shard` channel,
//! and the calling thread acting as the generator — pacing the arrival
//! schedule against the wall clock (or releasing it immediately in
//! virtual mode), routing each request through the consistent-hash ring
//! and the spillover hook, and sending it to its shard. When the
//! generator hangs up, shards drain to the horizon and report.
//!
//! [`serve`] records; [`replay`] re-executes a recording through the
//! *same* shard driver with stamps and placements read from the
//! recording instead of decided live — which is why a replay's
//! per-shard reports (and its own re-assembled recording) are
//! byte-identical to the live run's.

use flexpipe_chaos::DisruptionScript;
use flexpipe_cluster::{BackgroundProfile, ClusterSpec};
use flexpipe_metrics::Digest;
use flexpipe_serving::{
    Engine, EngineConfig, RunReport, Scenario, TraceEvent, TraceMode, TraceRecord, TraceRecorder,
};
use flexpipe_sim::SimTime;
use flexpipe_workload::{Request, RequestId, Workload};

use serde::{Deserialize, Serialize};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};

use crate::pacer::Pacer;
use crate::record::{RecordedArrival, Recording, ServeSpec, RECORDING_VERSION};
use crate::router::{HashRing, NoSpillover, SpilloverPolicy};
use crate::shard::{run_shard, ShardMsg, ShardRun};
use crate::{GatewayError, PaperSetup};

/// How the generator releases the arrival schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Pace against the wall clock at `time_scale` virtual seconds per
    /// wall second; shards stamp arrivals at dequeue. The live mode.
    Wall {
        /// Virtual seconds per wall second.
        time_scale: f64,
    },
    /// Release the whole schedule immediately with its generated
    /// virtual stamps: deterministic, as fast as the engines can go.
    /// The bench and CI mode.
    Virtual,
}

/// One shard's byte-stable result artifact. (No `PartialEq`: equality
/// checks run on the serialized JSON — that is the actual contract.)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: u32,
    /// The shard's cluster partition name.
    pub cluster: String,
    /// Arrivals this shard absorbed.
    pub arrivals: u64,
    /// Steady-state completions (post-warmup arrivals).
    pub completed: usize,
    /// Steady-state completions within SLO.
    pub within_slo: usize,
    /// Steady-state p50 time-to-first-token, seconds.
    pub p50_ttft: f64,
    /// Steady-state p99 time-to-first-token, seconds.
    pub p99_ttft: f64,
    /// The full deterministic engine report.
    pub report: RunReport,
}

/// Everything a live (or replayed) run produces.
pub struct ServeOutcome {
    /// The replayable trace: spec + every recorded arrival.
    pub recording: Recording,
    /// Per-shard byte-stable reports, in shard order.
    pub reports: Vec<ShardReport>,
    /// Per-shard structured traces (empty unless tracing was armed).
    pub traces: Vec<TraceRecorder>,
}

/// Runs a live serve: builds the model setup, then delegates to
/// [`serve_with`].
pub fn serve(
    spec: &ServeSpec,
    pacing: Pacing,
    spill: &dyn SpilloverPolicy,
) -> Result<ServeOutcome, GatewayError> {
    spec.validate()?;
    let setup = PaperSetup::for_model(spec.model);
    serve_with(spec, pacing, spill, &setup, TraceMode::Off)
}

/// Runs a live serve against a pre-built model setup (share it across
/// runs — lattice construction dwarfs a short serve) with tracing
/// optionally armed on every shard engine.
pub fn serve_with(
    spec: &ServeSpec,
    pacing: Pacing,
    spill: &dyn SpilloverPolicy,
    setup: &PaperSetup,
    trace_mode: TraceMode,
) -> Result<ServeOutcome, GatewayError> {
    spec.validate()?;
    let schedule = spec.schedule();
    let ring = HashRing::new(spec.shards, spec.vnodes);
    let pacer = match pacing {
        Pacing::Wall { time_scale } => {
            if !(time_scale.is_finite() && time_scale > 0.0) {
                return Err(GatewayError(format!(
                    "time scale must be finite and positive, got {time_scale}"
                )));
            }
            Some(Pacer::new(time_scale))
        }
        Pacing::Virtual => None,
    };

    let n = schedule.len();
    let mut assignments = vec![0u32; n];
    let runs = run_sharded(spec, setup, trace_mode, pacer.as_ref(), |txs, depths| {
        let pacer = pacer.as_ref();
        for (gi, req) in schedule.requests.iter().enumerate() {
            if let Some(p) = pacer {
                p.sleep_until(req.arrival);
            }
            let home = ring.route(req.id.0);
            let snapshot: Vec<usize> = depths.iter().map(|d| d.load(Ordering::Relaxed)).collect();
            let shard = spill.place(home, &snapshot).min(spec.shards - 1);
            assignments[gi] = shard;
            depths[shard as usize].fetch_add(1, Ordering::Relaxed);
            txs[shard as usize]
                .send(ShardMsg {
                    id: req.id.0,
                    // Wall mode: shards stamp at dequeue. Virtual mode:
                    // the generated schedule is the stamp.
                    stamp: pacer.is_none().then_some(req.arrival),
                    prompt_tokens: req.prompt_tokens,
                    output_tokens: req.output_tokens,
                    slo: req.slo,
                })
                .expect("shard thread alive until its sender drops");
        }
    });

    assemble(spec, &schedule.requests, &assignments, runs)
}

/// Re-executes a recording: same shard drivers, same injection rule,
/// with every stamp and placement read from the recording. Builds the
/// model setup; use [`replay_with`] to share one.
pub fn replay(recording: &Recording) -> Result<ServeOutcome, GatewayError> {
    let setup = PaperSetup::for_model(recording.spec.model);
    replay_with(recording, &setup, TraceMode::Off)
}

/// [`replay`] against a pre-built model setup, with optional tracing.
///
/// The returned outcome's recording is re-assembled from the replayed
/// shards and is byte-identical to the input — a built-in self-check.
pub fn replay_with(
    recording: &Recording,
    setup: &PaperSetup,
    trace_mode: TraceMode,
) -> Result<ServeOutcome, GatewayError> {
    let spec = &recording.spec;
    spec.validate()?;
    for (i, a) in recording.arrivals.iter().enumerate() {
        if a.id != i as u64 {
            return Err(GatewayError(format!(
                "recording arrivals must be dense in id order (index {i} holds id {})",
                a.id
            )));
        }
        if a.shard >= spec.shards {
            return Err(GatewayError(format!(
                "arrival {i} assigned to shard {} of {}",
                a.shard, spec.shards
            )));
        }
    }

    let assignments: Vec<u32> = recording.arrivals.iter().map(|a| a.shard).collect();
    let runs = run_sharded(spec, setup, trace_mode, None, |txs, depths| {
        for a in &recording.arrivals {
            depths[a.shard as usize].fetch_add(1, Ordering::Relaxed);
            txs[a.shard as usize]
                .send(ShardMsg {
                    id: a.id,
                    stamp: Some(a.stamp),
                    prompt_tokens: a.prompt_tokens,
                    output_tokens: a.output_tokens,
                    slo: a.slo,
                })
                .expect("shard thread alive until its sender drops");
        }
    });

    // Reconstruct the schedule-side facts from the recording itself.
    // Not a `Workload`: wall-derived stamps are monotone per shard, not
    // globally, and this list only feeds re-assembly — no engine runs it.
    let requests: Vec<Request> = recording
        .arrivals
        .iter()
        .map(|a| Request {
            id: RequestId(a.id),
            arrival: a.stamp,
            prompt_tokens: a.prompt_tokens,
            output_tokens: a.output_tokens,
            slo: a.slo,
        })
        .collect();
    assemble(spec, &requests, &assignments, runs)
}

/// Spawns the shard fleet, runs `feed` on the calling thread to drive
/// it, and joins: the structural core shared by serve and replay.
fn run_sharded<F>(
    spec: &ServeSpec,
    setup: &PaperSetup,
    trace_mode: TraceMode,
    pacer: Option<&Pacer>,
    feed: F,
) -> Vec<ShardRun>
where
    F: FnOnce(&[Sender<ShardMsg>], &[AtomicUsize]),
{
    let clusters = spec.shard_clusters();
    let horizon = SimTime::from_secs_f64(spec.span_secs() + 30.0);
    let depths: Vec<AtomicUsize> = (0..spec.shards).map(|_| AtomicUsize::new(0)).collect();
    let mut txs = Vec::with_capacity(spec.shards as usize);
    let mut rxs = Vec::with_capacity(spec.shards as usize);
    for _ in 0..spec.shards {
        let (tx, rx) = channel::<ShardMsg>();
        txs.push(tx);
        rxs.push(rx);
    }

    std::thread::scope(|s| {
        let depths = &depths;
        let handles: Vec<_> = rxs
            .into_iter()
            .zip(clusters)
            .enumerate()
            .map(|(i, (rx, cluster))| {
                s.spawn(move || {
                    let mut engine = build_shard_engine(spec, setup, cluster, horizon, i as u64);
                    engine.set_trace(trace_mode);
                    run_shard(engine, rx, pacer, &depths[i])
                })
            })
            .collect();
        feed(&txs, depths);
        drop(txs);
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread must not panic"))
            .collect()
    })
}

/// Builds shard `i`'s engine over its cluster partition: an empty
/// workload (arrivals come through the live channel), no disruptions,
/// idle background.
fn build_shard_engine(
    spec: &ServeSpec,
    setup: &PaperSetup,
    cluster: ClusterSpec,
    horizon: SimTime,
    shard: u64,
) -> Engine {
    let scenario = Scenario {
        config: EngineConfig {
            max_events: spec.max_events,
            ubatch_size: spec.ubatch_size,
            ..EngineConfig::default()
        },
        cluster,
        background: BackgroundProfile::none(),
        tier: Default::default(),
        cost: setup.cost,
        workload: Workload::default(),
        disruptions: DisruptionScript::default(),
        horizon,
        seed: crate::router::mix64(spec.seed ^ shard),
    };
    Engine::new(
        scenario,
        setup.graph.clone(),
        setup.lattice.clone(),
        spec.shard_policy(),
    )
}

/// Folds shard runs into the outcome: recording assembly (stamps merged
/// back in global id order) plus per-shard summaries.
fn assemble(
    spec: &ServeSpec,
    requests: &[Request],
    assignments: &[u32],
    runs: Vec<ShardRun>,
) -> Result<ServeOutcome, GatewayError> {
    let mut stamps: Vec<Option<SimTime>> = vec![None; requests.len()];
    for (shard, run) in runs.iter().enumerate() {
        for &(id, stamp) in &run.log {
            let slot = stamps
                .get_mut(id as usize)
                .ok_or_else(|| GatewayError(format!("shard {shard} logged unknown id {id}")))?;
            *slot = Some(stamp);
        }
    }
    let arrivals: Vec<RecordedArrival> = requests
        .iter()
        .enumerate()
        .map(|(gi, req)| {
            Ok(RecordedArrival {
                id: req.id.0,
                shard: assignments[gi],
                stamp: stamps[gi]
                    .ok_or_else(|| GatewayError(format!("arrival {gi} was never absorbed")))?,
                prompt_tokens: req.prompt_tokens,
                output_tokens: req.output_tokens,
                slo: req.slo,
            })
        })
        .collect::<Result<_, GatewayError>>()?;

    let mut reports = Vec::with_capacity(runs.len());
    let mut traces = Vec::with_capacity(runs.len());
    for (shard, run) in runs.into_iter().enumerate() {
        reports.push(summarize_shard(
            shard as u32,
            spec,
            run.log.len() as u64,
            run.observed.report,
        ));
        traces.push(run.observed.trace);
    }
    Ok(ServeOutcome {
        recording: Recording {
            version: RECORDING_VERSION,
            spec: spec.clone(),
            arrivals,
        },
        reports,
        traces,
    })
}

/// Computes one shard's steady-state summary (post-warmup arrivals
/// only, matching the fleet's windowing convention).
fn summarize_shard(shard: u32, spec: &ServeSpec, arrivals: u64, report: RunReport) -> ShardReport {
    let cut = SimTime::from_secs_f64(spec.warmup_secs);
    let mut ttft = Digest::new();
    let mut completed = 0usize;
    let mut within = 0usize;
    for o in report.outcomes.outcomes() {
        if o.arrival < cut {
            continue;
        }
        completed += 1;
        if o.within_slo() {
            within += 1;
        }
        ttft.record(o.queue.as_secs_f64() + o.prefill.as_secs_f64());
    }
    ShardReport {
        shard,
        cluster: format!("{}-cluster-shard{shard}of{}", spec.name, spec.shards),
        arrivals,
        completed,
        within_slo: within,
        p50_ttft: ttft.quantile(0.5),
        p99_ttft: ttft.quantile(0.99),
        report,
    }
}

impl ShardReport {
    /// Serializes to pretty JSON with a trailing newline (the byte-
    /// compared artifact form).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("shard report serializes");
        s.push('\n');
        s
    }
}

impl ServeOutcome {
    /// Shard `shard`'s trace with request ids rewritten from shard-local
    /// to fleet-global.
    ///
    /// Each shard engine sees a dense local id space (arrivals are
    /// appended in absorb order), so its trace's `req` payloads are
    /// local. The recording holds the global ids each shard absorbed, in
    /// absorb order (per-shard channel FIFO = the recording's id-order
    /// subsequence for that shard) — exactly the local→global map. With
    /// one shard the map is the identity. Requires tracing to have been
    /// armed on the run ([`TraceMode`] other than `Off`).
    pub fn global_trace(&self, shard: u32) -> Vec<TraceRecord> {
        let globals: Vec<u64> = self
            .recording
            .arrivals
            .iter()
            .filter(|a| a.shard == shard)
            .map(|a| a.id)
            .collect();
        self.traces[shard as usize]
            .records()
            .map(|r| {
                let mut r = r.clone();
                if let TraceEvent::RequestArrival { req }
                | TraceEvent::RequestAdmit { req, .. }
                | TraceEvent::RequestPrefillDone { req, .. }
                | TraceEvent::RequestComplete { req, .. }
                | TraceEvent::RequestAbort { req, .. } = &mut r.event
                {
                    *req = *globals
                        .get(*req as usize)
                        .expect("shard trace mentions only absorbed arrivals");
                }
                r
            })
            .collect()
    }
}

/// Convenience: a virtual-paced serve with no spillover — the fully
/// deterministic configuration tests and benches build on.
pub fn serve_virtual(spec: &ServeSpec, setup: &PaperSetup) -> Result<ServeOutcome, GatewayError> {
    serve_with(spec, Pacing::Virtual, &NoSpillover, setup, TraceMode::Off)
}
