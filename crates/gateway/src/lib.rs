//! `flexpipe-gateway`: sim-to-service — the sharded live-serving
//! gateway over the FlexPipe reproduction's deterministic engine.
//!
//! The rest of the workspace runs the engine *offline*: a pre-generated
//! workload, one event loop, one report. This crate turns that into a
//! live service shape without touching engine semantics:
//!
//! - [`record`] — the [`ServeSpec`] (static run description) and the
//!   [`Recording`] (every arrival's final shard + virtual stamp): the
//!   two halves that make any live run a deterministic spec;
//! - [`router`] — consistent-hash request routing over shards plus the
//!   [`SpilloverPolicy`] hook (default: [`NoSpillover`]);
//! - [`pacer`] — the wall-clock → virtual-time bridge, the only real
//!   clock in the system;
//! - [`serve`](mod@serve) — the orchestration: an open-loop generator
//!   pacing the
//!   stream onto `N` shard threads, each an independent engine
//!   partition driven through `flexpipe_serving::LiveEngine`;
//!   [`serve()`](serve::serve) records, [`replay()`](serve::replay)
//!   re-executes a recording byte-for-byte;
//! - [`bench`](mod@bench) — the shard-scaling benchmark behind
//!   `fleet bench --live`: byte-stable per-shard-count artifact plus
//!   wall-clock QPS rows for the CI scaling gate.
//!
//! # Determinism contract
//!
//! Everything nondeterministic about a live run — wall-derived stamps,
//! spillover placements — is recorded; everything else is a pure
//! function of spec + recording. Replaying a recording reproduces every
//! per-shard report byte for byte, and virtual-paced runs (no wall
//! clock at all) are byte-stable outright. Wall-clock measurements
//! never enter a byte-compared artifact.

#![warn(missing_docs)]

pub mod bench;
pub mod pacer;
pub mod record;
pub mod router;
pub mod serve;
mod shard;

pub use bench::{
    pinned_live_spec, run_live_bench, LiveBenchArtifact, LiveBenchOutcome, LiveBenchRow,
    LiveBenchTiming, LIVE_BENCH_VERSION,
};
pub use pacer::Pacer;
pub use record::{
    cross_shard_check_spec, RecordedArrival, Recording, ServeSpec, ShardPolicy, RECORDING_VERSION,
};
pub use router::{mix64, HashRing, LeastLoadedSpillover, NoSpillover, SpilloverPolicy};
pub use serve::{
    replay, replay_with, serve, serve_virtual, serve_with, Pacing, ServeOutcome, ShardReport,
};

pub use flexpipe_bench::PaperSetup;
pub use flexpipe_serving::{TraceMode, TraceRecorder};

/// A failed gateway operation.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayError(pub String);

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for GatewayError {}
