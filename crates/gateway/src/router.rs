//! Request routing: a consistent-hash ring over engine shards, plus the
//! cross-shard spillover hook.
//!
//! The ring is the deterministic half of routing: shard membership of a
//! request id depends only on `(shards, vnodes)`, never on arrival
//! order or load, so any two runs of the same stream route identically.
//! Spillover is the deliberately *non*-deterministic half — it may read
//! racy live queue depths — which is why the recording stores the final
//! post-spillover assignment: replay re-executes placements, it never
//! re-decides them.

use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring: `vnodes` points per shard on a `u64` circle.
///
/// Consistent hashing (rather than `id % shards`) keeps most request →
/// shard assignments stable when the shard count changes, the property
/// that makes cross-shard-count comparisons meaningful: going 1 → 2 → 4
/// shards re-routes a bounded slice of the stream instead of
/// reshuffling everything.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashRing {
    shards: u32,
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Builds the ring. Both counts must be positive.
    pub fn new(shards: u32, vnodes: u32) -> HashRing {
        assert!(shards > 0, "ring needs at least one shard");
        assert!(vnodes > 0, "ring needs at least one vnode per shard");
        let mut points: Vec<(u64, u32)> = (0..shards)
            .flat_map(|s| (0..vnodes).map(move |v| (mix64((u64::from(s) << 32) | u64::from(v)), s)))
            .collect();
        points.sort_unstable();
        HashRing { shards, points }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Routes a key to its home shard: the first ring point at or after
    /// the key's hash, wrapping around.
    pub fn route(&self, key: u64) -> u32 {
        let h = mix64(key);
        let i = self.points.partition_point(|&(p, _)| p < h);
        self.points[i % self.points.len()].1
    }
}

/// Cross-shard spillover: the control hook consulted after the ring.
///
/// `place` sees the home shard and a snapshot of per-shard outstanding
/// queue depths and returns the final shard. Depths are sampled live and
/// therefore racy — implementations must treat them as hints. The
/// returned shard is what gets recorded, so replay is deterministic
/// whatever a policy does here.
pub trait SpilloverPolicy: Sync {
    /// Policy name, for logs and artifacts.
    fn name(&self) -> &'static str;

    /// Final placement for a request homed at `home`. The default keeps
    /// every request on its home shard.
    fn place(&self, home: u32, depths: &[usize]) -> u32 {
        let _ = depths;
        home
    }
}

/// The default policy: no spillover, requests stay on their home shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSpillover;

impl SpilloverPolicy for NoSpillover {
    fn name(&self) -> &'static str {
        "none"
    }
}

/// Depth-triggered spillover: when the home shard's outstanding depth
/// exceeds the shallowest shard's by more than `threshold`, the request
/// spills to that shallowest shard (lowest index wins ties).
#[derive(Debug, Clone, Copy)]
pub struct LeastLoadedSpillover {
    /// Depth gap (requests) that triggers a spill.
    pub threshold: usize,
}

impl SpilloverPolicy for LeastLoadedSpillover {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn place(&self, home: u32, depths: &[usize]) -> u32 {
        let (min_shard, &min_depth) = match depths.iter().enumerate().min_by_key(|&(i, d)| (*d, i))
        {
            Some(m) => m,
            None => return home,
        };
        let home_depth = depths.get(home as usize).copied().unwrap_or(0);
        if home_depth > min_depth + self.threshold {
            min_shard as u32
        } else {
            home
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_routes_deterministically_and_covers_all_shards() {
        let ring = HashRing::new(4, 64);
        let mut hit = [false; 4];
        for key in 0..10_000u64 {
            let s = ring.route(key);
            assert!(s < 4);
            assert_eq!(s, ring.route(key), "routing must be a pure function");
            hit[s as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "every shard should receive load");
    }

    #[test]
    fn ring_growth_moves_only_a_slice_of_keys() {
        let two = HashRing::new(2, 64);
        let four = HashRing::new(4, 64);
        let n = 10_000u64;
        let moved = (0..n).filter(|&k| two.route(k) != four.route(k)).count();
        // Consistent hashing moves roughly the newcomers' share (~1/2
        // here), never close to everything.
        assert!(moved < (n as usize) * 3 / 4, "moved {moved} of {n}");
    }

    #[test]
    fn spillover_defaults_keep_home_and_least_loaded_spills() {
        assert_eq!(NoSpillover.place(1, &[100, 0]), 1);
        let policy = LeastLoadedSpillover { threshold: 8 };
        assert_eq!(policy.place(0, &[20, 5, 30]), 1, "gap 15 > 8 spills");
        assert_eq!(policy.place(0, &[10, 5, 30]), 0, "gap 5 <= 8 stays");
        assert_eq!(policy.place(2, &[0, 0, 0]), 2, "balanced stays home");
    }
}
