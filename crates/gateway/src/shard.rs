//! The per-shard driver: one thread, one engine partition, one
//! [`LiveEngine`] fed from a channel.
//!
//! The driver owns the two decisions that make live runs replayable:
//!
//! - **Shard-local stamping.** A live arrival's virtual stamp is
//!   assigned *here*, at dequeue, from the shard's own pacer read —
//!   never by the router. Clamping monotone against the previous stamp
//!   makes the per-shard stream sorted by construction, eliminating the
//!   race where a router-side stamp is overtaken by channel delivery.
//! - **Advance-then-inject.** Before an arrival enters, the engine is
//!   advanced through every event strictly earlier than its stamp
//!   ([`LiveEngine::advance_before`]); the pair of those two steps is
//!   the canonical injection rule replay re-executes verbatim.

use flexpipe_serving::{Engine, LiveEngine};
use flexpipe_sim::{SimDuration, SimTime};
use flexpipe_workload::{Request, RequestId};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;

use crate::pacer::Pacer;

/// A routed request descriptor, as sent to a shard's channel.
pub(crate) struct ShardMsg {
    /// Fleet-global request id.
    pub id: u64,
    /// Pre-assigned virtual stamp (replay and unpaced runs); `None`
    /// means "stamp at dequeue from the pacer" (live runs).
    pub stamp: Option<SimTime>,
    /// Prompt length, tokens.
    pub prompt_tokens: u32,
    /// Generation length, tokens.
    pub output_tokens: u32,
    /// Latency SLO.
    pub slo: SimDuration,
}

/// What one shard thread hands back after its channel closes.
pub(crate) struct ShardRun {
    /// The finished run's artifacts (report + trace + profiler).
    pub observed: flexpipe_serving::ObservedRun,
    /// `(global id, assigned stamp)` per arrival, in injection order.
    pub log: Vec<(u64, SimTime)>,
}

/// Drives one shard to completion: drains the channel, stamps and
/// injects every arrival, then finishes the run once all senders hang
/// up. `depth` is the shared outstanding-queue gauge the spillover hook
/// reads; the driver decrements it as arrivals are absorbed.
pub(crate) fn run_shard(
    engine: Engine,
    rx: Receiver<ShardMsg>,
    pacer: Option<&Pacer>,
    depth: &AtomicUsize,
) -> ShardRun {
    let mut live = LiveEngine::new(engine);
    let mut log = Vec::new();
    let mut last = SimTime::ZERO;
    while let Ok(msg) = rx.recv() {
        let raw = msg
            .stamp
            .or_else(|| pacer.map(Pacer::now))
            .expect("live arrivals need a pacer or a pre-assigned stamp");
        let stamp = raw.max(last);
        last = stamp;
        live.advance_before(stamp);
        let local = live.arrivals() as u64;
        live.push_arrival(Request {
            id: RequestId(local),
            arrival: stamp,
            prompt_tokens: msg.prompt_tokens,
            output_tokens: msg.output_tokens,
            slo: msg.slo,
        });
        log.push((msg.id, stamp));
        depth.fetch_sub(1, Ordering::Relaxed);
    }
    ShardRun {
        observed: live.finish(),
        log,
    }
}
