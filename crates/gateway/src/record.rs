//! The serve specification and the arrival recording — the two halves
//! of the record/replay contract.
//!
//! A [`ServeSpec`] describes everything *static* about a live run: the
//! model, the sharded cluster, the per-shard policy, the open-loop
//! generator and the horizon. A [`Recording`] adds everything *dynamic*
//! a live run discovered at wall-clock time: for each request, its
//! final (post-spillover) shard and the virtual stamp its shard
//! assigned at dequeue. Spec + recording together make any live run a
//! deterministic artifact: replaying a recording re-executes the exact
//! event sequence and produces byte-identical per-shard reports.

use flexpipe_cluster::ClusterSpec;
use flexpipe_model::ModelId;
use flexpipe_serving::ControlPolicy;
use flexpipe_sim::{SimDuration, SimRng, SimTime};
use flexpipe_workload::{ArrivalSpec, LengthProfile, Workload, WorkloadSpec};

use serde::{Deserialize, Serialize};

use crate::GatewayError;

/// Per-shard control policy, by construction recipe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShardPolicy {
    /// A fixed fleet of `replicas` pipelines (fleet-wide total; split
    /// evenly across shards) at `stages` stages each. The pinned
    /// configuration of the live scaling gate.
    Static {
        /// Pipeline depth.
        stages: u32,
        /// Fleet-wide replica count; must divide by the shard count.
        replicas: u32,
    },
    /// FlexPipe's full Algorithm-1 control loop, sized for this shard's
    /// slice of the offered rate.
    FlexPipe,
}

/// Complete static description of a live-serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSpec {
    /// Run name, used in artifact headers and shard cluster names.
    pub name: String,
    /// Model being served.
    pub model: ModelId,
    /// Root seed of the open-loop generator.
    pub seed: u64,
    /// Engine shard count.
    pub shards: u32,
    /// Consistent-hash virtual nodes per shard.
    pub vnodes: u32,
    /// Serving horizon (virtual seconds of arrivals past warmup).
    pub horizon_secs: f64,
    /// Warmup window excluded from steady-state summaries.
    pub warmup_secs: f64,
    /// Open-loop arrival rate, requests/second across all shards.
    pub rate: f64,
    /// Coefficient of variation of inter-arrival gaps.
    pub cv: f64,
    /// Request length profile.
    pub lengths: LengthProfile,
    /// Base latency SLO, seconds.
    pub slo_secs: f64,
    /// Additional SLO budget per generated token, milliseconds.
    pub slo_per_output_token_ms: f64,
    /// Per-shard control policy.
    pub policy: ShardPolicy,
    /// Cluster servers (split across shards via [`ClusterSpec::partition`]).
    pub nodes: u32,
    /// Cluster GPU total.
    pub total_gpus: u32,
    /// Servers per rack.
    pub servers_per_rack: u32,
    /// Per-shard engine step budget.
    pub max_events: u64,
    /// Decode micro-batch size (smaller batches mean more engine passes
    /// per token — the knob the scaling bench uses to keep engine
    /// execution dominant over orchestration overhead).
    pub ubatch_size: u32,
}

impl ServeSpec {
    /// A small template spec: 2 shards over a 4-replica single-stage
    /// Llama2-7B fleet under light traffic — the shape `fleet serve`
    /// writes with `init` and CI smokes.
    pub fn template() -> ServeSpec {
        ServeSpec {
            name: "live-smoke".into(),
            model: ModelId::Llama2_7B,
            seed: 7,
            shards: 2,
            vnodes: 64,
            horizon_secs: 8.0,
            warmup_secs: 2.0,
            rate: 10.0,
            cv: 2.0,
            lengths: LengthProfile::fixed(64, 4),
            slo_secs: 2.0,
            slo_per_output_token_ms: 100.0,
            policy: ShardPolicy::Static {
                stages: 1,
                replicas: 4,
            },
            nodes: 9,
            total_gpus: 16,
            servers_per_rack: 8,
            max_events: 200_000_000,
            ubatch_size: 128,
        }
    }

    /// Validates the spec: positive counts and rates, a cluster that
    /// splits into the requested shards, a policy that divides evenly.
    pub fn validate(&self) -> Result<(), GatewayError> {
        let err = |m: String| Err(GatewayError(m));
        if self.shards == 0 {
            return err("shards must be positive".into());
        }
        if self.vnodes == 0 {
            return err("vnodes must be positive".into());
        }
        if !(self.rate.is_finite() && self.rate > 0.0) {
            return err(format!(
                "rate must be finite and positive, got {}",
                self.rate
            ));
        }
        if !(self.cv.is_finite() && self.cv > 0.0) {
            return err(format!("cv must be finite and positive, got {}", self.cv));
        }
        if !(self.horizon_secs.is_finite() && self.horizon_secs > 0.0) {
            return err("horizon must be finite and positive".into());
        }
        if !(self.warmup_secs.is_finite() && self.warmup_secs >= 0.0) {
            return err("warmup must be finite and non-negative".into());
        }
        if self.nodes < self.shards {
            return err(format!(
                "{} servers cannot split into {} shards",
                self.nodes, self.shards
            ));
        }
        if self.total_gpus < self.nodes {
            return err("need at least one GPU per node".into());
        }
        if let ShardPolicy::Static { stages, replicas } = self.policy {
            if stages == 0 || replicas == 0 {
                return err("static policy needs positive stages and replicas".into());
            }
            if replicas % self.shards != 0 {
                return err(format!(
                    "{replicas} replicas do not divide across {} shards",
                    self.shards
                ));
            }
        }
        if self.max_events == 0 {
            return err("max_events must be positive".into());
        }
        if self.ubatch_size == 0 {
            return err("ubatch_size must be positive".into());
        }
        Ok(())
    }

    /// The arrival span (warmup + horizon), virtual seconds.
    pub fn span_secs(&self) -> f64 {
        self.warmup_secs + self.horizon_secs
    }

    /// Generates the open-loop arrival schedule deterministically from
    /// the seed: the stream the generator paces out, with fleet-global
    /// dense request ids.
    pub fn schedule(&self) -> Workload {
        WorkloadSpec {
            arrivals: ArrivalSpec::GammaRenewal {
                rate: self.rate,
                cv: self.cv,
            },
            lengths: self.lengths,
            slo: SimDuration::from_secs_f64(self.slo_secs),
            slo_per_output_token: SimDuration::from_secs_f64(self.slo_per_output_token_ms / 1e3),
            horizon_secs: self.span_secs(),
        }
        .generate(&mut SimRng::seed(self.seed))
    }

    /// The shard cluster partitions (one [`ClusterSpec`] per shard).
    pub fn shard_clusters(&self) -> Vec<ClusterSpec> {
        ClusterSpec::heterogeneous(
            &format!("{}-cluster", self.name),
            self.nodes,
            self.total_gpus,
            self.servers_per_rack,
        )
        .partition(self.shards)
    }

    /// Builds shard `i`'s control policy.
    pub fn shard_policy(&self) -> Box<dyn ControlPolicy> {
        match self.policy {
            ShardPolicy::Static { stages, replicas } => {
                flexpipe_bench::systems::static_pipeline(stages, replicas / self.shards)
            }
            ShardPolicy::FlexPipe => {
                flexpipe_bench::SystemId::FlexPipe.policy(self.rate / f64::from(self.shards))
            }
        }
    }
}

/// The cross-shard checker workload: the template fleet under traffic
/// light enough that requests essentially never contend for a replica —
/// the regime where sharding must be invisible to request lifecycles
/// (`flexpipe-check`'s `check_cross_shard` compares the `shards`-way run
/// against the 1-shard canonical trace). `shards` must divide the
/// template's 4 replicas (1, 2 or 4).
pub fn cross_shard_check_spec(shards: u32) -> ServeSpec {
    ServeSpec {
        name: "cross-shard-check".into(),
        shards,
        rate: 2.0,
        // Near-regular gaps (gamma with cv 0.25): ~500ms between
        // arrivals against ~10ms of service keeps every request alone on
        // its replica, so its lifecycle timing is shard-independent.
        cv: 0.25,
        horizon_secs: 10.0,
        warmup_secs: 0.0,
        ..ServeSpec::template()
    }
}

/// Current [`Recording::version`].
pub const RECORDING_VERSION: u32 = 1;

/// One recorded arrival: the dynamic facts replay needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecordedArrival {
    /// Fleet-global request id, dense in send order.
    pub id: u64,
    /// Final (post-spillover) shard assignment.
    pub shard: u32,
    /// Virtual stamp the shard assigned at dequeue.
    pub stamp: SimTime,
    /// Prompt length, tokens.
    pub prompt_tokens: u32,
    /// Generation length, tokens.
    pub output_tokens: u32,
    /// Latency SLO.
    pub slo: SimDuration,
}

/// A live run's replayable trace: the spec plus every recorded arrival.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recording {
    /// Format version ([`RECORDING_VERSION`]).
    pub version: u32,
    /// The static run description.
    pub spec: ServeSpec,
    /// Recorded arrivals, in fleet-global id order.
    pub arrivals: Vec<RecordedArrival>,
}

impl Recording {
    /// Serializes to pretty JSON with a trailing newline (the repo's
    /// byte-stable artifact convention).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("recording serializes");
        s.push('\n');
        s
    }

    /// Parses and version-checks a recording.
    pub fn from_json(text: &str) -> Result<Recording, GatewayError> {
        let rec: Recording =
            serde_json::from_str(text).map_err(|e| GatewayError(format!("recording: {e}")))?;
        if rec.version != RECORDING_VERSION {
            return Err(GatewayError(format!(
                "recording is format version {} (this build expects {})",
                rec.version, RECORDING_VERSION
            )));
        }
        rec.spec.validate()?;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_validates_and_schedules_deterministically() {
        let spec = ServeSpec::template();
        spec.validate().unwrap();
        let a = spec.schedule();
        let b = spec.schedule();
        assert_eq!(a, b, "schedule must be a pure function of the spec");
        assert!(!a.is_empty());
        assert_eq!(spec.shard_clusters().len(), 2);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut spec = ServeSpec::template();
        spec.shards = 0;
        assert!(spec.validate().is_err());
        let mut spec = ServeSpec::template();
        spec.rate = 0.0;
        assert!(spec.validate().is_err());
        let mut spec = ServeSpec::template();
        spec.shards = 3; // 4 replicas don't divide by 3
        assert!(spec.validate().is_err());
        let mut spec = ServeSpec::template();
        spec.nodes = 1;
        assert!(spec.validate().is_err(), "1 server cannot host 2 shards");
    }

    #[test]
    fn recording_round_trips_and_rejects_foreign_versions() {
        let rec = Recording {
            version: RECORDING_VERSION,
            spec: ServeSpec::template(),
            arrivals: vec![RecordedArrival {
                id: 0,
                shard: 1,
                stamp: SimTime::from_secs_f64(0.25),
                prompt_tokens: 64,
                output_tokens: 4,
                slo: SimDuration::from_secs_f64(2.0),
            }],
        };
        let json = rec.to_json();
        assert!(json.ends_with('\n'));
        assert_eq!(Recording::from_json(&json).unwrap(), rec);

        let mut foreign = rec.clone();
        foreign.version = RECORDING_VERSION + 1;
        let err = Recording::from_json(&foreign.to_json()).unwrap_err();
        assert!(err.0.contains("format version"));
    }
}
