//! The model zoo used throughout the paper's evaluation (§9): OPT-66B,
//! LLAMA2-7B, BERT-21B and WHISPER-9B.
//!
//! Graphs are generated from architectural parameters, emitting seven
//! operators per transformer layer (ln → qkv → attention → attn-out → ln →
//! mlp-up → mlp-down) plus embedding/head blocks, each annotated with
//! FLOPs, parameter bytes, activation-cut bytes and KV bytes.

use serde::{Deserialize, Serialize};

use crate::graph::{ModelConfig, ModelGraph};
use crate::ops::{BlockId, OpId, OpKind, Operator};

/// Effective context length used to linearise the (quadratic) attention
/// score cost into a per-token figure. A constant keeps the cost model
/// linear in tokens, which is what the §5 DP requires; the value matches
/// the KV token budget of the calibrated cost model.
pub const ATTN_EFF_CTX: f64 = 512.0;

/// The four evaluation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelId {
    /// OPT-66B decoder (the paper's large-model workhorse, Table 2).
    Opt66B,
    /// LLAMA2-7B decoder.
    Llama2_7B,
    /// A 21B-parameter BERT-style encoder.
    Bert21B,
    /// A 9B-parameter Whisper-style encoder-decoder.
    Whisper9B,
}

impl ModelId {
    /// All zoo members in the order the paper's Fig. 13 lists them.
    pub fn all() -> [ModelId; 4] {
        [
            ModelId::Whisper9B,
            ModelId::Llama2_7B,
            ModelId::Bert21B,
            ModelId::Opt66B,
        ]
    }

    /// Builds this model's graph.
    pub fn graph(self) -> ModelGraph {
        match self {
            ModelId::Opt66B => opt_66b(),
            ModelId::Llama2_7B => llama2_7b(),
            ModelId::Bert21B => bert_21b(),
            ModelId::Whisper9B => whisper_9b(),
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Opt66B => "OPT-66B",
            ModelId::Llama2_7B => "LLAMA2-7B",
            ModelId::Bert21B => "BERT-21B",
            ModelId::Whisper9B => "WHISPER-9B",
        }
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

struct StackSpec {
    name: &'static str,
    d_model: u32,
    n_layers: u32,
    n_heads: u32,
    d_ffn: u32,
    vocab: u32,
    generative: bool,
    /// SwiGLU MLPs carry a gate projection (Llama family).
    swiglu: bool,
    /// Audio convolution front-end instead of token embedding.
    conv_frontend: bool,
    /// Classification pooler instead of LM head.
    pooler: bool,
    /// Layers `< kv_from_layer` do not hold KV (encoder halves).
    kv_from_layer: u32,
}

fn build(spec: StackSpec) -> ModelGraph {
    let d = f64::from(spec.d_model);
    let ffn = f64::from(spec.d_ffn);
    let vocab = f64::from(spec.vocab);
    let wb = 2u64; // fp16
    let elem = 2u64; // activation bytes per element

    let mut ops: Vec<Operator> = Vec::new();
    let mut block = 0u32;
    let push = |ops: &mut Vec<Operator>,
                kind: OpKind,
                block: u32,
                layer: Option<u32>,
                flops: f64,
                params: f64,
                act_elems: f64,
                kv_elems: f64| {
        ops.push(Operator {
            id: OpId(ops.len() as u32),
            kind,
            block: BlockId(block),
            layer,
            flops_per_token: flops,
            param_bytes: (params * wb as f64) as u64,
            act_out_bytes_per_token: (act_elems * elem as f64) as u64,
            kv_bytes_per_token: (kv_elems * elem as f64) as u64,
        });
    };

    // Front-end block.
    if spec.conv_frontend {
        push(
            &mut ops,
            OpKind::ConvFrontend,
            block,
            None,
            60.0 * d,
            3.0 * 9.0 * d + 2.0 * d * d / 64.0,
            d,
            0.0,
        );
    } else {
        // Token + positional embeddings (4k positions).
        push(
            &mut ops,
            OpKind::Embedding,
            block,
            None,
            2.0 * d,
            vocab * d + 4096.0 * d,
            d,
            0.0,
        );
    }

    // Transformer layers.
    for layer in 0..spec.n_layers {
        block += 1;
        let holds_kv = layer >= spec.kv_from_layer;
        let kv = if holds_kv { 2.0 * d } else { 0.0 };
        let (mlp_up_flops, mlp_up_params) = if spec.swiglu {
            (4.0 * d * ffn, 2.0 * d * ffn + 2.0 * ffn)
        } else {
            (2.0 * d * ffn, d * ffn + ffn)
        };
        let l = Some(layer);
        // Pre-attention norm: normed stream + live residual cross a cut.
        push(
            &mut ops,
            OpKind::LayerNorm,
            block,
            l,
            10.0 * d,
            2.0 * d,
            2.0 * d,
            0.0,
        );
        // Fused QKV: q,k,v (3d) + residual (d).
        push(
            &mut ops,
            OpKind::QkvProj,
            block,
            l,
            6.0 * d * d,
            3.0 * d * d + 3.0 * d,
            4.0 * d,
            0.0,
        );
        // Attention: context output + residual; holds the KV cache.
        push(
            &mut ops,
            OpKind::Attention,
            block,
            l,
            4.0 * d * ATTN_EFF_CTX,
            0.0,
            2.0 * d,
            kv,
        );
        // Output projection; residual add folds in, single stream leaves.
        push(
            &mut ops,
            OpKind::AttnOut,
            block,
            l,
            2.0 * d * d,
            d * d + d,
            2.0 * d,
            0.0,
        );
        // Pre-MLP norm.
        push(
            &mut ops,
            OpKind::LayerNorm,
            block,
            l,
            10.0 * d,
            2.0 * d,
            2.0 * d,
            0.0,
        );
        // MLP up (+ gate when SwiGLU): widest activation in the block.
        push(
            &mut ops,
            OpKind::MlpUp,
            block,
            l,
            mlp_up_flops,
            mlp_up_params,
            ffn + d,
            0.0,
        );
        // MLP down; residual add folds in — the block-tail cut is cheap.
        push(
            &mut ops,
            OpKind::MlpDown,
            block,
            l,
            2.0 * ffn * d,
            ffn * d + d,
            d,
            0.0,
        );
    }

    // Head block.
    block += 1;
    if spec.pooler {
        push(
            &mut ops,
            OpKind::Pooler,
            block,
            None,
            2.0 * d * d,
            d * d + d,
            d,
            0.0,
        );
    } else {
        push(
            &mut ops,
            OpKind::LmHead,
            block,
            None,
            2.0 * d * vocab,
            d * vocab,
            d,
            0.0,
        );
    }

    ModelGraph::from_parts(
        ModelConfig {
            name: spec.name.to_string(),
            d_model: spec.d_model,
            n_layers: spec.n_layers,
            n_heads: spec.n_heads,
            d_ffn: spec.d_ffn,
            vocab: spec.vocab,
            weight_bytes: wb as u32,
            generative: spec.generative,
        },
        ops,
    )
}

/// OPT-66B: 64 layers, d=9216 — the model behind Table 2 (~123 GiB fp16).
pub fn opt_66b() -> ModelGraph {
    build(StackSpec {
        name: "OPT-66B",
        d_model: 9216,
        n_layers: 64,
        n_heads: 72,
        d_ffn: 36864,
        vocab: 50272,
        generative: true,
        swiglu: false,
        conv_frontend: false,
        pooler: false,
        kv_from_layer: 0,
    })
}

/// LLAMA2-7B: 32 layers, d=4096, SwiGLU MLPs.
pub fn llama2_7b() -> ModelGraph {
    build(StackSpec {
        name: "LLAMA2-7B",
        d_model: 4096,
        n_layers: 32,
        n_heads: 32,
        d_ffn: 11008,
        vocab: 32000,
        generative: true,
        swiglu: true,
        conv_frontend: false,
        pooler: false,
        kv_from_layer: 0,
    })
}

/// BERT-21B: a 48-layer, d=6144 encoder; single-pass (no KV, no decode).
pub fn bert_21b() -> ModelGraph {
    build(StackSpec {
        name: "BERT-21B",
        d_model: 6144,
        n_layers: 48,
        n_heads: 48,
        d_ffn: 24576,
        vocab: 30522,
        generative: false,
        swiglu: false,
        conv_frontend: false,
        pooler: true,
        kv_from_layer: u32::MAX,
    })
}

/// WHISPER-9B: a Whisper-style encoder-decoder with a conv front-end;
/// only the decoder half (layers 32..64) holds KV cache.
pub fn whisper_9b() -> ModelGraph {
    build(StackSpec {
        name: "WHISPER-9B",
        d_model: 3328,
        n_layers: 64,
        n_heads: 52,
        d_ffn: 13312,
        vocab: 51865,
        generative: true,
        swiglu: false,
        conv_frontend: true,
        pooler: false,
        kv_from_layer: 32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_match_names() {
        let checks = [
            (opt_66b(), 60.0e9, 72.0e9),
            (llama2_7b(), 6.0e9, 8.0e9),
            (bert_21b(), 19.0e9, 24.0e9),
            (whisper_9b(), 8.0e9, 11.0e9),
        ];
        for (g, lo, hi) in checks {
            let p = g.total_params() as f64;
            assert!(
                (lo..hi).contains(&p),
                "{} has {:.1}B params, expected {:.0}–{:.0}B",
                g.name(),
                p / 1e9,
                lo / 1e9,
                hi / 1e9
            );
        }
    }

    #[test]
    fn opt_66b_is_roughly_120_gigabytes() {
        // The paper quotes "OPT-66B (120GB)" in Table 2.
        let gib = opt_66b().total_param_bytes() as f64 / (1u64 << 30) as f64;
        assert!((115.0..135.0).contains(&gib), "{gib} GiB");
    }

    #[test]
    fn op_counts_follow_structure() {
        let g = llama2_7b();
        // 1 embedding + 32 * 7 + 1 head.
        assert_eq!(g.op_count(), 1 + 32 * 7 + 1);
        assert_eq!(g.block_count(), 34);
    }

    #[test]
    fn encoder_has_no_kv() {
        let g = bert_21b();
        assert!(g.ops().iter().all(|o| o.kv_bytes_per_token == 0));
        assert!(!g.config().generative);
    }

    #[test]
    fn whisper_kv_only_in_decoder_half() {
        let g = whisper_9b();
        for op in g.ops() {
            match op.layer {
                Some(l) if l >= 32 => {
                    if op.kind == OpKind::Attention {
                        assert!(op.kv_bytes_per_token > 0);
                    }
                }
                _ => assert_eq!(op.kv_bytes_per_token, 0, "{op:?}"),
            }
        }
    }

    #[test]
    fn model_id_round_trip() {
        for id in ModelId::all() {
            let g = id.graph();
            assert_eq!(g.name(), id.name());
        }
    }

    #[test]
    fn swiglu_increases_mlp_params() {
        let llama = llama2_7b();
        let up = llama
            .ops()
            .iter()
            .find(|o| o.kind == OpKind::MlpUp)
            .unwrap();
        let down = llama
            .ops()
            .iter()
            .find(|o| o.kind == OpKind::MlpDown)
            .unwrap();
        // Gate + up ≈ 2x down.
        let ratio = up.param_bytes as f64 / down.param_bytes as f64;
        assert!((1.9..2.1).contains(&ratio), "{ratio}");
    }
}
