//! Simple structural partition helpers.
//!
//! The optimising partitioner lives in `flexpipe-partition`; this module
//! provides the *uniform layer split* used for calibration (Table 2 slices
//! OPT-66B into 4/8/16/32 equal stages) and as the baseline cut that the
//! DP partitioner must beat.

use crate::graph::{ModelGraph, OpRange};
use crate::ops::OpId;

/// Splits `g` into `stages` contiguous ranges with evenly many transformer
/// layers each; the embedding front-end rides with the first stage and the
/// head with the last.
///
/// # Panics
///
/// Panics if `stages` is zero or exceeds the layer count.
pub fn even_layer_ranges(g: &ModelGraph, stages: u32) -> Vec<OpRange> {
    assert!(stages >= 1, "stages must be >= 1");
    let n_layers = g.config().n_layers;
    assert!(
        stages <= n_layers,
        "cannot split {n_layers} layers into {stages} stages"
    );
    // First op index of each layer.
    let mut layer_starts = vec![u32::MAX; n_layers as usize];
    let mut layer_ends = vec![0u32; n_layers as usize];
    for op in g.ops() {
        if let Some(l) = op.layer {
            let l = l as usize;
            layer_starts[l] = layer_starts[l].min(op.id.0);
            layer_ends[l] = layer_ends[l].max(op.id.0 + 1);
        }
    }
    let mut ranges = Vec::with_capacity(stages as usize);
    let mut cursor = 0u32;
    for s in 0..stages {
        // Layers [lo, hi) for stage s, distributing remainders forward.
        let lo = (u64::from(s) * u64::from(n_layers) / u64::from(stages)) as u32;
        let hi = (u64::from(s + 1) * u64::from(n_layers) / u64::from(stages)) as u32;
        debug_assert!(hi > lo);
        let end = if s == stages - 1 {
            g.op_count() // head rides with the last stage
        } else {
            layer_ends[(hi - 1) as usize]
        };
        ranges.push(OpRange::new(cursor, end));
        cursor = end;
    }
    ranges
}

/// Returns the cut boundaries (last op of each non-final stage) of a
/// partition expressed as ranges.
pub fn boundaries_of(ranges: &[OpRange]) -> Vec<OpId> {
    ranges
        .iter()
        .take(ranges.len().saturating_sub(1))
        .map(|r| OpId(r.end - 1))
        .collect()
}

/// Checks that `ranges` is a partition of `g` into contiguous, non-empty,
/// exhaustive stages.
pub fn validate_partition(g: &ModelGraph, ranges: &[OpRange]) -> Result<(), String> {
    if ranges.is_empty() {
        return Err("no stages".into());
    }
    if ranges[0].start != 0 {
        return Err(format!("first stage starts at {}", ranges[0].start));
    }
    if ranges[ranges.len() - 1].end != g.op_count() {
        return Err(format!(
            "last stage ends at {} of {}",
            ranges[ranges.len() - 1].end,
            g.op_count()
        ));
    }
    for w in ranges.windows(2) {
        if !w[0].adjacent_to(&w[1]) {
            return Err(format!("gap between {:?} and {:?}", w[0], w[1]));
        }
    }
    if ranges.iter().any(|r| r.is_empty()) {
        return Err("empty stage".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn even_split_is_valid_partition() {
        let g = zoo::opt_66b();
        for stages in [1, 2, 4, 8, 16, 32, 64] {
            let ranges = even_layer_ranges(&g, stages);
            assert_eq!(ranges.len(), stages as usize);
            validate_partition(&g, &ranges).unwrap();
        }
    }

    #[test]
    fn interior_stages_have_equal_layer_params() {
        let g = zoo::opt_66b();
        let ranges = even_layer_ranges(&g, 8);
        // Interior stages (not first, not last) hold identical layer sets.
        let params: Vec<u64> = ranges[1..7]
            .iter()
            .map(|&r| g.range_param_bytes(r))
            .collect();
        assert!(params.windows(2).all(|w| w[0] == w[1]), "{params:?}");
    }

    #[test]
    fn cuts_land_on_block_boundaries() {
        let g = zoo::llama2_7b();
        let ranges = even_layer_ranges(&g, 8);
        for b in boundaries_of(&ranges) {
            assert!(g.is_block_boundary(b), "cut after {b:?} is mid-block");
        }
    }

    #[test]
    fn uneven_layer_counts_distribute() {
        let g = zoo::llama2_7b(); // 32 layers
        let ranges = even_layer_ranges(&g, 5); // 32/5: sizes 6,7,6,7,6
        validate_partition(&g, &ranges).unwrap();
        assert_eq!(ranges.len(), 5);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_many_stages_panics() {
        let g = zoo::llama2_7b();
        even_layer_ranges(&g, 33);
    }

    #[test]
    fn validate_rejects_gaps() {
        let g = zoo::llama2_7b();
        let bad = vec![OpRange::new(0, 5), OpRange::new(6, g.op_count())];
        assert!(validate_partition(&g, &bad).is_err());
    }
}
