//! Operator taxonomy for transformer computation graphs.
//!
//! FlexPipe partitions models at *operator* granularity (§5): the unit of
//! placement is not a layer but an individual projection / attention /
//! MLP operator, each annotated with the three metrics the paper's profiler
//! measures — computation time `t_c(v)` (derived from FLOPs here),
//! parameter size `s_p(v)` and activation size `s_a(v)`.

use serde::{Deserialize, Serialize};

/// Identifier of an operator inside one [`crate::graph::ModelGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub u32);

/// Identifier of a hierarchical block (one transformer layer, the embedding
/// front-end, or the LM head). Cutting *between* blocks preserves the
/// structure FlexPipe's regulariser `R(S_k)` rewards (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// The kinds of operator the model zoo emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Token + positional embedding lookup.
    Embedding,
    /// Audio convolution front-end (Whisper-style models).
    ConvFrontend,
    /// Pre-attention layer norm.
    LayerNorm,
    /// Fused Q/K/V projection.
    QkvProj,
    /// Scaled dot-product attention (the only KV-cache-bearing operator).
    Attention,
    /// Attention output projection.
    AttnOut,
    /// MLP up projection (and gate for SwiGLU models).
    MlpUp,
    /// MLP down projection.
    MlpDown,
    /// Final layer norm + LM head projection.
    LmHead,
    /// Classification pooler (encoder-only models).
    Pooler,
}

impl OpKind {
    /// Whether this operator holds KV cache during generation.
    pub fn holds_kv(self) -> bool {
        matches!(self, OpKind::Attention)
    }
}

/// One operator: a vertex of the computation graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// This operator's id (equals its index in the graph's op list).
    pub id: OpId,
    /// What it computes.
    pub kind: OpKind,
    /// The hierarchical block it belongs to.
    pub block: BlockId,
    /// Transformer layer index, if inside a layer.
    pub layer: Option<u32>,
    /// Dense FLOPs per input token (prefill; decode uses the same figure
    /// per generated token).
    pub flops_per_token: f64,
    /// Parameter bytes held by this operator.
    pub param_bytes: u64,
    /// Output activation bytes per token crossing a cut placed *after*
    /// this operator. Includes the residual stream where one is live, so
    /// mid-block cuts are organically more expensive.
    pub act_out_bytes_per_token: u64,
    /// KV-cache bytes per cached token (non-zero only for attention).
    pub kv_bytes_per_token: u64,
}

impl Operator {
    /// Whether a pipeline cut immediately after this operator lands on a
    /// block boundary (the refactoring-friendly position).
    pub fn is_block_tail(&self, next: Option<&Operator>) -> bool {
        match next {
            Some(n) => n.block != self.block,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_attention_holds_kv() {
        assert!(OpKind::Attention.holds_kv());
        for k in [
            OpKind::Embedding,
            OpKind::LayerNorm,
            OpKind::QkvProj,
            OpKind::AttnOut,
            OpKind::MlpUp,
            OpKind::MlpDown,
            OpKind::LmHead,
            OpKind::Pooler,
            OpKind::ConvFrontend,
        ] {
            assert!(!k.holds_kv(), "{k:?}");
        }
    }

    #[test]
    fn block_tail_detection() {
        let a = Operator {
            id: OpId(0),
            kind: OpKind::LayerNorm,
            block: BlockId(0),
            layer: Some(0),
            flops_per_token: 1.0,
            param_bytes: 1,
            act_out_bytes_per_token: 1,
            kv_bytes_per_token: 0,
        };
        let mut b = a;
        b.id = OpId(1);
        b.block = BlockId(1);
        assert!(a.is_block_tail(Some(&b)));
        b.block = BlockId(0);
        assert!(!a.is_block_tail(Some(&b)));
        assert!(a.is_block_tail(None));
    }
}
