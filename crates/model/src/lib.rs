//! Operator-level LLM computation graphs and the analytic cost model for
//! the FlexPipe reproduction.
//!
//! FlexPipe's partitioner (§5) consumes three per-operator profiles —
//! compute time, parameter size, activation size — plus the block structure
//! that makes refactoring-friendly cuts identifiable. With no GPUs in this
//! environment, profiles come from an analytic model calibrated to the
//! paper's own Table 2 measurements of OPT-66B (see [`cost`]).
//!
//! - [`ops`] — operator taxonomy with per-op cost annotations;
//! - [`graph`] — linearised computation graphs, cut pricing, block structure;
//! - [`zoo`] — OPT-66B, LLAMA2-7B, BERT-21B, WHISPER-9B generators;
//! - [`cost`] — the calibrated [`cost::CostModel`];
//! - [`batch`] — Eq. (3) batch-aware transmission scaling;
//! - [`partitioning_helpers`] — uniform layer splits used for calibration
//!   and as the baseline the optimising partitioner must beat.

#![warn(missing_docs)]

pub mod batch;
pub mod cost;
pub mod graph;
pub mod ops;
pub mod partitioning_helpers;
pub mod zoo;

pub use batch::BatchScaling;
pub use cost::{CostModel, MaxBatchTable};
pub use graph::{ModelConfig, ModelGraph, OpRange};
pub use ops::{BlockId, OpId, OpKind, Operator};
pub use partitioning_helpers::{boundaries_of, even_layer_ranges, validate_partition};
pub use zoo::ModelId;
