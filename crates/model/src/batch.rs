//! Batch-aware transmission scaling — Eq. (3) of the paper.
//!
//! Profiling measures activation sizes at one batch size `b_base`; online
//! serving runs arbitrary micro-batch sizes. The paper fits
//!
//! ```text
//! s_a(S_k, b) = s_a_base(S_k) · (1 + α · log(b / b_base))
//! ```
//!
//! with α learned by linear regression over historical (batch, bytes)
//! profiles. The sub-linear growth reflects transport-level compression
//! and padding amortisation at larger batches.

use serde::{Deserialize, Serialize};

/// Fitted batch-aware activation scaling model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchScaling {
    /// Compression factor α of Eq. (3).
    pub alpha: f64,
    /// Profiling batch size `b_base`.
    pub b_base: f64,
}

impl Default for BatchScaling {
    fn default() -> Self {
        // α defaults to mildly sub-linear; experiments refit from profiles.
        BatchScaling {
            alpha: 0.85,
            b_base: 8.0,
        }
    }
}

impl BatchScaling {
    /// Predicted activation bytes at micro-batch `b`, given the profiled
    /// per-micro-batch bytes `s_base` measured at `b_base`.
    ///
    /// The multiplier is clamped to be non-negative, so absurd
    /// extrapolations far below `b_base` degrade to zero rather than
    /// negative traffic.
    pub fn scale(&self, s_base: f64, b: f64) -> f64 {
        if b <= 0.0 || s_base <= 0.0 {
            return 0.0;
        }
        let factor = 1.0 + self.alpha * (b / self.b_base).ln();
        (s_base * factor).max(0.0)
    }

    /// Fits α by least squares from observed `(batch, bytes)` pairs with
    /// known `s_base` at `b_base`.
    ///
    /// Model: `y/s_base - 1 = α · ln(b/b_base)` — a one-parameter
    /// regression through the origin, `α = Σ(x·y') / Σ(x²)`.
    ///
    /// Returns `None` when fewer than two usable points exist.
    pub fn fit(samples: &[(f64, f64)], s_base: f64, b_base: f64) -> Option<BatchScaling> {
        if s_base <= 0.0 || b_base <= 0.0 {
            return None;
        }
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut used = 0;
        for &(b, y) in samples {
            if b <= 0.0 || y < 0.0 {
                continue;
            }
            let x = (b / b_base).ln();
            if x.abs() < 1e-12 {
                continue; // the base point carries no slope information
            }
            let yp = y / s_base - 1.0;
            sxx += x * x;
            sxy += x * yp;
            used += 1;
        }
        if used < 2 || sxx <= 0.0 {
            return None;
        }
        Some(BatchScaling {
            alpha: sxy / sxx,
            b_base,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_identity_at_base_batch() {
        let s = BatchScaling::default();
        let bytes = s.scale(1000.0, s.b_base);
        assert!((bytes - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn scale_grows_sublinearly() {
        let s = BatchScaling {
            alpha: 0.8,
            b_base: 8.0,
        };
        let at_8 = s.scale(1000.0, 8.0);
        let at_64 = s.scale(1000.0, 64.0);
        assert!(at_64 > at_8);
        // 8x more batch yields far less than 8x more bytes.
        assert!(at_64 / at_8 < 4.0);
    }

    #[test]
    fn scale_clamps_to_zero() {
        let s = BatchScaling {
            alpha: 2.0,
            b_base: 64.0,
        };
        // b ≪ b_base drives the multiplier negative; clamp at zero.
        assert_eq!(s.scale(1000.0, 1.0), 0.0);
        assert_eq!(s.scale(0.0, 32.0), 0.0);
        assert_eq!(s.scale(1000.0, 0.0), 0.0);
    }

    #[test]
    fn fit_recovers_known_alpha() {
        let truth = BatchScaling {
            alpha: 0.6,
            b_base: 8.0,
        };
        let s_base = 5000.0;
        let samples: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 128.0]
            .iter()
            .map(|&b| (b, truth.scale(s_base, b)))
            .collect();
        let fitted = BatchScaling::fit(&samples, s_base, 8.0).unwrap();
        assert!((fitted.alpha - 0.6).abs() < 0.05, "alpha {}", fitted.alpha);
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(BatchScaling::fit(&[], 100.0, 8.0).is_none());
        assert!(BatchScaling::fit(&[(8.0, 100.0)], 100.0, 8.0).is_none());
        assert!(BatchScaling::fit(&[(1.0, 1.0), (2.0, 2.0)], 0.0, 8.0).is_none());
    }
}
