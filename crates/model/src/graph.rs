//! Linearised computation graphs and the profile queries the partitioner
//! consumes.
//!
//! Decoder LLM inference is a chain of operators; pipeline stages are
//! contiguous operator ranges. The graph records block structure so the §5
//! partitioner can (a) price the activation traffic of any cut exactly and
//! (b) prefer cuts on block boundaries, which keep future merge/split
//! refactoring cheap.

use serde::{Deserialize, Serialize};

use crate::ops::{BlockId, OpId, Operator};

/// Architectural metadata of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model name as used in the paper's evaluation.
    pub name: String,
    /// Hidden dimension.
    pub d_model: u32,
    /// Number of transformer layers (encoder+decoder combined for
    /// encoder-decoder models).
    pub n_layers: u32,
    /// Attention heads.
    pub n_heads: u32,
    /// MLP inner dimension.
    pub d_ffn: u32,
    /// Vocabulary size.
    pub vocab: u32,
    /// Bytes per weight (2 for fp16).
    pub weight_bytes: u32,
    /// Whether the model generates autoregressively (decoder present).
    pub generative: bool,
}

/// A linearised operator graph plus block structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelGraph {
    config: ModelConfig,
    ops: Vec<Operator>,
}

/// A contiguous operator range `[start, end)` forming one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpRange {
    /// First operator index (inclusive).
    pub start: u32,
    /// One past the last operator index.
    pub end: u32,
}

impl OpRange {
    /// Builds a range, panicking on inversion.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "inverted OpRange {start}..{end}");
        OpRange { start, end }
    }

    /// Number of operators covered.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `self` immediately precedes `other`.
    pub fn adjacent_to(&self, other: &OpRange) -> bool {
        self.end == other.start
    }

    /// The union of two adjacent ranges.
    ///
    /// # Panics
    ///
    /// Panics if the ranges are not adjacent.
    pub fn merge(&self, other: &OpRange) -> OpRange {
        assert!(
            self.adjacent_to(other),
            "cannot merge non-adjacent ranges {self:?} and {other:?}"
        );
        OpRange::new(self.start, other.end)
    }
}

impl ModelGraph {
    /// Builds a graph from explicit parts (the zoo uses this).
    pub fn from_parts(config: ModelConfig, ops: Vec<Operator>) -> Self {
        debug_assert!(ops
            .iter()
            .enumerate()
            .all(|(i, op)| op.id == OpId(i as u32)));
        ModelGraph { config, ops }
    }

    /// Architectural metadata.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// All operators in execution order.
    pub fn ops(&self) -> &[Operator] {
        &self.ops
    }

    /// Number of operators.
    pub fn op_count(&self) -> u32 {
        self.ops.len() as u32
    }

    /// One operator by id.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn op(&self, id: OpId) -> &Operator {
        &self.ops[id.0 as usize]
    }

    /// Total parameter bytes of the model.
    pub fn total_param_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.param_bytes).sum()
    }

    /// Total parameter count (approximate, derived from bytes).
    pub fn total_params(&self) -> u64 {
        self.total_param_bytes() / u64::from(self.config.weight_bytes)
    }

    /// Sum of parameter bytes over a stage range.
    pub fn range_param_bytes(&self, r: OpRange) -> u64 {
        self.ops[r.start as usize..r.end as usize]
            .iter()
            .map(|o| o.param_bytes)
            .sum()
    }

    /// Sum of FLOPs per token over a stage range.
    pub fn range_flops_per_token(&self, r: OpRange) -> f64 {
        self.ops[r.start as usize..r.end as usize]
            .iter()
            .map(|o| o.flops_per_token)
            .sum()
    }

    /// KV-cache bytes per cached token held by a stage range.
    pub fn range_kv_bytes_per_token(&self, r: OpRange) -> u64 {
        self.ops[r.start as usize..r.end as usize]
            .iter()
            .map(|o| o.kv_bytes_per_token)
            .sum()
    }

    /// Activation bytes per token crossing the cut after operator
    /// `boundary` (i.e. between `boundary` and `boundary + 1`).
    ///
    /// A cut after the final operator carries only the token logits and is
    /// priced as zero here (the response path is not pipelined).
    pub fn cut_act_bytes_per_token(&self, boundary: OpId) -> u64 {
        let idx = boundary.0 as usize;
        if idx + 1 >= self.ops.len() {
            0
        } else {
            self.ops[idx].act_out_bytes_per_token
        }
    }

    /// Whether the cut after `boundary` lands on a block boundary.
    pub fn is_block_boundary(&self, boundary: OpId) -> bool {
        let idx = boundary.0 as usize;
        match self.ops.get(idx + 1) {
            Some(next) => next.block != self.ops[idx].block,
            None => true,
        }
    }

    /// All cut positions (operator ids after which a cut is on a block
    /// boundary). These are the natural breakpoints of §5.
    pub fn block_boundaries(&self) -> Vec<OpId> {
        (0..self.ops.len())
            .filter(|&i| self.is_block_boundary(OpId(i as u32)))
            .map(|i| OpId(i as u32))
            .collect()
    }

    /// Number of distinct blocks.
    pub fn block_count(&self) -> u32 {
        self.ops
            .iter()
            .map(|o| o.block)
            .collect::<std::collections::HashSet<BlockId>>()
            .len() as u32
    }

    /// The operator ids of every attention op in a range (used by KV
    /// migration planning).
    pub fn attention_ops_in(&self, r: OpRange) -> Vec<OpId> {
        self.ops[r.start as usize..r.end as usize]
            .iter()
            .filter(|o| o.kind.holds_kv())
            .map(|o| o.id)
            .collect()
    }

    /// Validates structural invariants; returns a description on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.ops.is_empty() {
            return Err("empty op list".into());
        }
        for (i, op) in self.ops.iter().enumerate() {
            if op.id.0 as usize != i {
                return Err(format!("op {i} has id {:?}", op.id));
            }
            if !op.flops_per_token.is_finite() || op.flops_per_token < 0.0 {
                return Err(format!("op {i} has bad flops {}", op.flops_per_token));
            }
        }
        // Blocks must be contiguous runs.
        let mut seen = std::collections::HashSet::new();
        let mut prev = None;
        for op in &self.ops {
            if Some(op.block) != prev {
                if !seen.insert(op.block) {
                    return Err(format!("block {:?} is not contiguous", op.block));
                }
                prev = Some(op.block);
            }
        }
        // Generative models must carry KV somewhere.
        if self.config.generative && self.ops.iter().all(|o| o.kv_bytes_per_token == 0) {
            return Err("generative model without KV-bearing ops".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpKind;
    use crate::zoo;

    #[test]
    fn op_range_basics() {
        let a = OpRange::new(0, 4);
        let b = OpRange::new(4, 9);
        assert!(a.adjacent_to(&b));
        assert_eq!(a.merge(&b), OpRange::new(0, 9));
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert!(OpRange::new(3, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-adjacent")]
    fn merging_gap_panics() {
        let _ = OpRange::new(0, 2).merge(&OpRange::new(5, 6));
    }

    #[test]
    fn zoo_graphs_validate() {
        for g in [
            zoo::opt_66b(),
            zoo::llama2_7b(),
            zoo::bert_21b(),
            zoo::whisper_9b(),
        ] {
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        }
    }

    #[test]
    fn block_boundaries_are_layer_edges() {
        let g = zoo::llama2_7b();
        let boundaries = g.block_boundaries();
        // embedding block + 32 layers + head block = 34 blocks → 34 boundaries
        // (the final op is always a boundary).
        assert_eq!(boundaries.len() as u32, g.block_count());
        for b in &boundaries {
            assert!(g.is_block_boundary(*b));
        }
    }

    #[test]
    fn range_queries_are_additive() {
        let g = zoo::opt_66b();
        let n = g.op_count();
        let whole = OpRange::new(0, n);
        let left = OpRange::new(0, n / 2);
        let right = OpRange::new(n / 2, n);
        assert_eq!(
            g.range_param_bytes(whole),
            g.range_param_bytes(left) + g.range_param_bytes(right)
        );
        let f = g.range_flops_per_token(left) + g.range_flops_per_token(right);
        assert!((f - g.range_flops_per_token(whole)).abs() / f < 1e-12);
        assert_eq!(
            g.range_kv_bytes_per_token(whole),
            g.range_kv_bytes_per_token(left) + g.range_kv_bytes_per_token(right)
        );
    }

    #[test]
    fn mid_block_cuts_cost_more_activation() {
        let g = zoo::opt_66b();
        // Find a mid-block cut and a block-boundary cut in layer territory.
        let mut mid = None;
        let mut edge = None;
        for i in 0..g.op_count() - 1 {
            let id = OpId(i);
            if g.is_block_boundary(id) {
                if edge.is_none() && g.op(id).layer.is_some() {
                    edge = Some(id);
                }
            } else if mid.is_none() && g.op(id).kind == OpKind::QkvProj {
                mid = Some(id);
            }
        }
        let (mid, edge) = (mid.unwrap(), edge.unwrap());
        assert!(
            g.cut_act_bytes_per_token(mid) > g.cut_act_bytes_per_token(edge),
            "qkv cut {} should exceed boundary cut {}",
            g.cut_act_bytes_per_token(mid),
            g.cut_act_bytes_per_token(edge)
        );
    }
}
