//! Analytic cost model calibrated to the paper's Table 2.
//!
//! Table 2 profiles OPT-66B at sequence length 4096 on A100s and fixes four
//! calibration constants:
//!
//! | quantity | paper value | constant here |
//! |---|---|---|
//! | per-stage compute, 16 layers | 69.94 ms | `eff_flops` = 1.95e15 |
//! | per-stage overhead (solve 4 vs 32 stages) | ≈1.06 ms | `stage_overhead` |
//! | stage load, 33 GB | 47.14 s | storage bw 0.7 GB/s (cluster crate) |
//! | max batch 128 → ~1000 as stages go 4 → 32 | — | `kv_token_budget`, `per_request_workspace` |
//!
//! `eff_flops` is an *effective* rate: it folds batching efficiency and
//! kernel overlap into one constant so that simulated stage durations land
//! on the paper's measurements. Only relative shape matters downstream.

use std::cell::RefCell;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use flexpipe_sim::SimDuration;

use crate::graph::{ModelGraph, OpRange};
use crate::ops::OpId;

/// Cost model constants (see module docs for calibration provenance).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Effective sustained FLOP/s of one GPU for these workloads.
    pub eff_flops: f64,
    /// Fixed per-stage launch overhead per pass.
    pub stage_overhead: SimDuration,
    /// KV tokens budgeted per admitted request (drives max batch).
    pub kv_token_budget: u32,
    /// Per-request activation workspace bytes.
    pub per_request_workspace: u64,
    /// Per-GPU runtime reserve (CUDA context, fragmentation slack).
    pub runtime_reserve: u64,
    /// Device memory bandwidth, bytes/s. Every pass reads the stage's
    /// weights once, so pass time is floored at `param_bytes / hbm_bw` —
    /// the memory-bound regime that makes small-batch decode inefficient
    /// and large batches (Table 2's max-batch column) pay off.
    pub hbm_bandwidth: f64,
    /// Fixed per-stage load setup (file opens, allocator and runtime
    /// init) paid once per parameter load regardless of size.
    pub load_setup: SimDuration,
    /// Partition size at which a load streams at the tier's face
    /// bandwidth. Smaller partitions fetch in parallel chunks and reuse
    /// the page cache, so their *effective* bandwidth rises toward
    /// `load_peak_gain ×` face rate — the layout effect behind Table 2's
    /// non-linear load column (0.7–1.26 GB/s effective on the same disk).
    pub load_ref_bytes: u64,
    /// Cap on the chunked-fetch/page-cache bandwidth gain.
    pub load_peak_gain: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            eff_flops: 1.95e15,
            stage_overhead: SimDuration::from_micros(1060),
            kv_token_budget: 568,
            per_request_workspace: 32 << 20,
            runtime_reserve: 2 << 30,
            hbm_bandwidth: 2.0e12,
            load_setup: SimDuration::from_secs_f64(1.8),
            load_ref_bytes: 33_000_000_000,
            load_peak_gain: 1.85,
        }
    }
}

impl CostModel {
    /// Compute time for one pass of `tokens` tokens through stage `r`.
    ///
    /// `tokens` is the number of *processed* tokens in the pass: prompt
    /// length × batch for prefill, batch size for one decode iteration.
    pub fn stage_compute(&self, g: &ModelGraph, r: OpRange, tokens: u64) -> SimDuration {
        let flops_secs = g.range_flops_per_token(r) * tokens as f64 / self.eff_flops;
        let weight_read_secs = g.range_param_bytes(r) as f64 / self.hbm_bandwidth;
        self.stage_overhead + SimDuration::from_secs_f64(flops_secs.max(weight_read_secs))
    }

    /// Parameter bytes a stage must hold in device memory.
    pub fn stage_param_bytes(&self, g: &ModelGraph, r: OpRange) -> u64 {
        g.range_param_bytes(r)
    }

    /// Device memory needed by stage `r` at a given admitted batch size.
    pub fn stage_mem_bytes(&self, g: &ModelGraph, r: OpRange, batch: u32) -> u64 {
        let kv_per_req = g.range_kv_bytes_per_token(r) * u64::from(self.kv_token_budget)
            + self.per_request_workspace;
        g.range_param_bytes(r) + self.runtime_reserve + kv_per_req * u64::from(batch)
    }

    /// Largest batch admissible on a stage given `gpu_mem` bytes of device
    /// memory (Table 2's "Max Batch" column).
    pub fn max_batch(&self, g: &ModelGraph, r: OpRange, gpu_mem: u64) -> u32 {
        let fixed = g.range_param_bytes(r) + self.runtime_reserve;
        if fixed >= gpu_mem {
            return 0;
        }
        let kv_per_req = g.range_kv_bytes_per_token(r) * u64::from(self.kv_token_budget)
            + self.per_request_workspace;
        if kv_per_req == 0 {
            return u32::MAX;
        }
        ((gpu_mem - fixed) / kv_per_req).min(u32::MAX as u64) as u32
    }

    /// Bytes crossing the cut after `boundary` when `tokens` tokens flow.
    pub fn hop_bytes(&self, g: &ModelGraph, boundary: OpId, tokens: u64) -> u64 {
        g.cut_act_bytes_per_token(boundary) * tokens
    }

    /// Load time of stage `r` from a tier with the given read bandwidth
    /// (bytes/s): a fixed setup plus the layout-aware streaming time.
    ///
    /// The streaming term is *not* linear in partition size: below
    /// `load_ref_bytes`, effective bandwidth rises (parallel chunked
    /// fetch, page-cache reuse) up to `load_peak_gain ×` the face rate,
    /// while the constant `load_setup` dominates very small stages —
    /// together reproducing Table 2's measured load column, where a
    /// strictly linear model overshoots the 8-stage row by ~80%.
    pub fn stage_load(&self, g: &ModelGraph, r: OpRange, bandwidth: f64) -> SimDuration {
        let bytes = g.range_param_bytes(r) as f64;
        let gain = (self.load_ref_bytes as f64 / bytes).clamp(1.0, self.load_peak_gain);
        self.load_setup + SimDuration::from_secs_f64(bytes / (bandwidth * gain))
    }

    /// KV-cache bytes held by stage `r` for `requests` requests with
    /// `tokens_each` cached tokens each (used to price KV migration).
    pub fn stage_kv_bytes(
        &self,
        g: &ModelGraph,
        r: OpRange,
        requests: u32,
        tokens_each: u32,
    ) -> u64 {
        g.range_kv_bytes_per_token(r) * u64::from(requests) * u64::from(tokens_each)
    }

    /// An empty memoized Table-2 row cache bound to this cost model's
    /// constants (see [`MaxBatchTable`]).
    pub fn max_batch_table(&self) -> MaxBatchTable {
        MaxBatchTable::new(*self)
    }
}

/// One memoized Table-2 row: the per-range constants every memory query
/// reduces to. `max_batch` and `stage_mem_bytes` are pure arithmetic over
/// these two numbers; only deriving them walks the operator slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RangeRow {
    /// Parameter bytes the range must hold resident.
    param_bytes: u64,
    /// KV-cache bytes per cached token across the range.
    kv_bytes_per_token: u64,
}

/// Memoized Table-2 partition table: caches the per-range profile sums
/// behind [`CostModel::max_batch`] / [`CostModel::stage_mem_bytes`] so
/// refactor-time recomputation reuses prior rows instead of re-walking the
/// operator slice (O(range length) per call → O(1) after first touch).
///
/// Purity contract: rows are *derived constants*, so every query returns
/// bit-identical results to the uncached [`CostModel`] methods — asserted
/// in debug builds on every lookup. Rows are keyed on the range alone and
/// stay valid as long as callers query the same graph the rows were
/// derived from; [`MaxBatchTable::invalidate`] is the explicit reset for
/// callers that swap graphs (the serving engine never does — graph and
/// cost model are fixed per scenario).
///
/// Interior mutability (a `RefCell` over the row map) keeps the query API
/// `&self`, matching the uncached methods it shadows; the table is `Send`
/// (not `Sync`), which is all the fleet's per-engine ownership needs.
#[derive(Debug)]
pub struct MaxBatchTable {
    cost: CostModel,
    rows: RefCell<HashMap<(u32, u32), RangeRow>>,
}

impl MaxBatchTable {
    /// An empty table bound to `cost`'s calibration constants.
    pub fn new(cost: CostModel) -> Self {
        MaxBatchTable {
            cost,
            rows: RefCell::new(HashMap::new()),
        }
    }

    /// The memoized per-range row, deriving (and caching) it on first
    /// touch. Debug builds re-derive and compare on every hit, so a stale
    /// row can never survive a test run silently.
    fn row(&self, g: &ModelGraph, r: OpRange) -> RangeRow {
        let key = (r.start, r.end);
        if let Some(&row) = self.rows.borrow().get(&key) {
            debug_assert_eq!(
                row,
                RangeRow {
                    param_bytes: g.range_param_bytes(r),
                    kv_bytes_per_token: g.range_kv_bytes_per_token(r),
                },
                "memoized Table-2 row diverged from the graph for {r:?}"
            );
            return row;
        }
        let row = RangeRow {
            param_bytes: g.range_param_bytes(r),
            kv_bytes_per_token: g.range_kv_bytes_per_token(r),
        };
        self.rows.borrow_mut().insert(key, row);
        row
    }

    /// Memoized [`CostModel::max_batch`]: bit-identical, O(1) after the
    /// first query of a range.
    pub fn max_batch(&self, g: &ModelGraph, r: OpRange, gpu_mem: u64) -> u32 {
        let row = self.row(g, r);
        let fixed = row.param_bytes + self.cost.runtime_reserve;
        if fixed >= gpu_mem {
            return 0;
        }
        let kv_per_req = row.kv_bytes_per_token * u64::from(self.cost.kv_token_budget)
            + self.cost.per_request_workspace;
        if kv_per_req == 0 {
            return u32::MAX;
        }
        let batch = ((gpu_mem - fixed) / kv_per_req).min(u32::MAX as u64) as u32;
        debug_assert_eq!(batch, self.cost.max_batch(g, r, gpu_mem));
        batch
    }

    /// Memoized [`CostModel::stage_mem_bytes`]: bit-identical, O(1) after
    /// the first query of a range.
    pub fn stage_mem_bytes(&self, g: &ModelGraph, r: OpRange, batch: u32) -> u64 {
        let row = self.row(g, r);
        let kv_per_req = row.kv_bytes_per_token * u64::from(self.cost.kv_token_budget)
            + self.cost.per_request_workspace;
        let bytes = row.param_bytes + self.cost.runtime_reserve + kv_per_req * u64::from(batch);
        debug_assert_eq!(bytes, self.cost.stage_mem_bytes(g, r, batch));
        bytes
    }

    /// Drops every memoized row. Call when the graph the table was queried
    /// against is replaced; rows rebuild lazily on the next query.
    pub fn invalidate(&self) {
        self.rows.borrow_mut().clear();
    }

    /// Number of memoized rows (diagnostics and tests).
    pub fn rows_cached(&self) -> usize {
        self.rows.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioning_helpers::even_layer_ranges;
    use crate::zoo;

    const GIB: u64 = 1 << 30;

    /// Table 2 reference: (stages, load s, compute ms, max batch).
    const TABLE2: [(u32, f64, f64, u32); 4] = [
        (4, 47.14, 69.94, 128),
        (8, 13.05, 36.63, 256),
        (16, 9.19, 18.67, 512),
        (32, 5.43, 9.67, 1024),
    ];

    #[test]
    fn table2_compute_column_reproduces() {
        let g = zoo::opt_66b();
        let cm = CostModel::default();
        for (stages, _, compute_ms, _) in TABLE2 {
            let ranges = even_layer_ranges(&g, stages);
            // Interior stage (pure layers, no embed/head) at seq 4096.
            let mid = ranges[ranges.len() / 2];
            let t = cm.stage_compute(&g, mid, 4096).as_millis_f64();
            let err = (t - compute_ms).abs() / compute_ms;
            assert!(
                err < 0.08,
                "{stages} stages: computed {t:.2} ms vs paper {compute_ms} ms"
            );
        }
    }

    #[test]
    fn table2_load_column_reproduces() {
        let g = zoo::opt_66b();
        let cm = CostModel::default();
        let storage_bw = 0.7e9;
        let mut worst = 0.0f64;
        for (stages, load_s, _, _) in TABLE2 {
            let ranges = even_layer_ranges(&g, stages);
            let mid = ranges[ranges.len() / 2];
            let t = cm.stage_load(&g, mid, storage_bw).as_secs_f64();
            // The paper's column is not linear in stage size (effective
            // bandwidth swings 0.7–1.26 GB/s with layout); the setup +
            // capped-gain model lands every row within 15% — down from
            // ~80% error on the 8-stage row under a strictly linear model.
            let ratio = t / load_s;
            assert!(
                (0.85..1.15).contains(&ratio),
                "{stages} stages: load {t:.2} s vs paper {load_s} s"
            );
            worst = worst.max((ratio - 1.0).abs());
        }
        assert!(worst > 0.0, "rows must be real measurements, not exact");
        let r4 = even_layer_ranges(&g, 4);
        let r32 = even_layer_ranges(&g, 32);
        let t4 = cm.stage_load(&g, r4[2], storage_bw).as_secs_f64();
        let t32 = cm.stage_load(&g, r32[16], storage_bw).as_secs_f64();
        assert!(
            (t4 / t32 - 8.7).abs() < 1.5,
            "load ratio {:.2} vs paper 8.7x",
            t4 / t32
        );
    }

    #[test]
    fn table2_max_batch_column_shape() {
        let g = zoo::opt_66b();
        let cm = CostModel::default();
        let mut got = Vec::new();
        for (stages, _, _, _) in TABLE2 {
            let ranges = even_layer_ranges(&g, stages);
            let mid = ranges[ranges.len() / 2];
            got.push(cm.max_batch(&g, mid, 80 * GIB));
        }
        // Paper: 128 / 256 / 512 / 1024. Require monotone growth, a 4-stage
        // value near 128 and an overall ratio near 8x.
        assert!(got.windows(2).all(|w| w[1] > w[0]), "{got:?}");
        assert!((100..160).contains(&got[0]), "4-stage max batch {}", got[0]);
        let ratio = got[3] as f64 / got[0] as f64;
        assert!((6.5..10.5).contains(&ratio), "ratio {ratio} ({got:?})");
    }

    #[test]
    fn decode_hits_the_weight_read_floor() {
        let g = zoo::opt_66b();
        let cm = CostModel::default();
        let r = even_layer_ranges(&g, 4)[1];
        // Prefill at 4096 tokens is flops-bound and far above the floor.
        let prefill = cm.stage_compute(&g, r, 4096);
        // Decode passes are weight-read-bound: batch 1 and batch 512 cost
        // the same (the Table 2 batching-amortisation effect).
        let d1 = cm.stage_compute(&g, r, 1);
        let d512 = cm.stage_compute(&g, r, 512);
        assert_eq!(d1, d512, "floor-bound passes are batch-invariant");
        assert!(prefill > d1 * 3);
        // The floor equals stage params / HBM bandwidth (+ overhead).
        let expect = g.range_param_bytes(r) as f64 / cm.hbm_bandwidth;
        let got = d1.as_secs_f64() - cm.stage_overhead.as_secs_f64();
        assert!((got - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn stage_mem_accounts_for_batch() {
        let g = zoo::opt_66b();
        let cm = CostModel::default();
        let r = even_layer_ranges(&g, 8)[3];
        let m0 = cm.stage_mem_bytes(&g, r, 0);
        let m64 = cm.stage_mem_bytes(&g, r, 64);
        assert!(m64 > m0);
        assert_eq!(m0, g.range_param_bytes(r) + cm.runtime_reserve);
        // The computed max batch indeed fits.
        let mb = cm.max_batch(&g, r, 80 * GIB);
        assert!(cm.stage_mem_bytes(&g, r, mb) <= 80 * GIB);
        assert!(cm.stage_mem_bytes(&g, r, mb + 1) > 80 * GIB);
    }

    #[test]
    fn max_batch_zero_when_params_do_not_fit() {
        let g = zoo::opt_66b();
        let cm = CostModel::default();
        let whole = OpRange::new(0, g.op_count());
        // 123 GiB of parameters cannot fit an 80 GiB device.
        assert_eq!(cm.max_batch(&g, whole, 80 * GIB), 0);
    }

    #[test]
    fn max_batch_table_matches_uncached_model_exactly() {
        let g = zoo::opt_66b();
        let cm = CostModel::default();
        let table = cm.max_batch_table();
        assert_eq!(table.rows_cached(), 0);
        for stages in [4u32, 8, 16, 32] {
            for r in even_layer_ranges(&g, stages) {
                for mem in [GIB, 40 * GIB, 80 * GIB, 81 * GIB] {
                    assert_eq!(table.max_batch(&g, r, mem), cm.max_batch(&g, r, mem));
                }
                for batch in [0u32, 1, 64, 1024] {
                    assert_eq!(
                        table.stage_mem_bytes(&g, r, batch),
                        cm.stage_mem_bytes(&g, r, batch)
                    );
                }
            }
        }
        // 4+8+16+32 distinct ranges memoized, each derived exactly once.
        assert_eq!(table.rows_cached(), 60);
        // Repeat queries hit the memo (row count stays put) and agree.
        let r = even_layer_ranges(&g, 8)[3];
        assert_eq!(
            table.max_batch(&g, r, 80 * GIB),
            cm.max_batch(&g, r, 80 * GIB)
        );
        assert_eq!(table.rows_cached(), 60);
        // Explicit invalidation drops the rows; queries still agree.
        table.invalidate();
        assert_eq!(table.rows_cached(), 0);
        assert_eq!(
            table.max_batch(&g, r, 80 * GIB),
            cm.max_batch(&g, r, 80 * GIB)
        );
        assert_eq!(table.rows_cached(), 1);
    }

    #[test]
    fn hop_bytes_track_boundary_choice() {
        let g = zoo::opt_66b();
        let cm = CostModel::default();
        let boundaries = g.block_boundaries();
        let tail = boundaries[1]; // end of layer 0
        let tokens = 1280;
        let tail_bytes = cm.hop_bytes(&g, tail, tokens);
        // Block-tail hop carries the single residual stream: d_model fp16
        // elements per token.
        assert_eq!(tail_bytes, 9216 * 2 * tokens);
    }
}
