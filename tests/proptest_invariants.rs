//! Property-based tests on the core data structures and cross-crate
//! invariants.

use proptest::prelude::*;

use flexpipe::cluster::{AllocError, Cluster, ClusterSpec, GpuId, ServerId};
use flexpipe::core::ValidityMask;
use flexpipe::model::{validate_partition, zoo, CostModel, OpRange};
use flexpipe::partition::{GranularityLattice, PartitionParams, Partitioner};
use flexpipe::sim::SimRng;
use flexpipe::sim::{EventQueue, SimTime};
use flexpipe::workload::{gen_gamma_renewal, interarrival_cv};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DP partitioner always emits a valid, memory-feasible partition
    /// for any feasible stage count of any zoo model.
    #[test]
    fn partitions_are_always_valid(model_idx in 0usize..4, k in 2u32..16) {
        let graph = flexpipe::model::ModelId::all()[model_idx].graph();
        let cost = CostModel::default();
        let partitioner = Partitioner::new(PartitionParams::default(), cost);
        if let Ok(partition) = partitioner.partition(&graph, k) {
            prop_assert_eq!(partition.stages(), k);
            prop_assert!(validate_partition(&graph, &partition.ranges).is_ok());
            for c in &partition.stage_costs {
                prop_assert!(c.feasible);
                prop_assert!(c.mem_bytes <= PartitionParams::default().gpu_mem);
            }
        }
    }

    /// Lattice levels always partition the graph and their transition
    /// plans conserve parameter bytes (moved ⊆ total).
    #[test]
    fn lattice_transitions_conserve_bytes(from_idx in 0usize..4, to_idx in 0usize..4) {
        let graph = zoo::llama2_7b();
        let cost = CostModel::default();
        let partitioner = Partitioner::new(PartitionParams::default(), cost);
        let lattice =
            GranularityLattice::build(&partitioner, &graph, 16, &[2, 4, 8, 16], &cost).unwrap();
        lattice.validate(&graph).unwrap();
        let counts = lattice.stage_counts();
        let plan = lattice.plan_transition(&graph, counts[from_idx], counts[to_idx]);
        prop_assert!(plan.total_load_bytes <= graph.total_param_bytes());
        let whole_kv = graph.range_kv_bytes_per_token(OpRange::new(0, graph.op_count()));
        prop_assert!(plan.total_kv_bytes_per_token <= whole_kv);
        // Identity transitions move nothing.
        if from_idx == to_idx {
            prop_assert_eq!(plan.total_load_bytes, 0);
        }
        // Reuse assignments are injective.
        let mut olds: Vec<u32> = plan
            .transitions
            .iter()
            .filter_map(|t| t.reuse_old_stage)
            .collect();
        let before = olds.len();
        olds.sort_unstable();
        olds.dedup();
        prop_assert_eq!(olds.len(), before);
    }

    /// Random reserve/release sequences never violate cluster capacity or
    /// ledger consistency.
    #[test]
    fn cluster_leases_never_overcommit(ops in prop::collection::vec((0u32..82, 0u64..90, any::<bool>()), 1..120)) {
        let mut cluster = Cluster::new(ClusterSpec::paper_testbed());
        let mut live = Vec::new();
        for (gpu, gib, release_one) in ops {
            if release_one && !live.is_empty() {
                let id = live.swap_remove(0);
                prop_assert!(cluster.release(id).is_ok());
                prop_assert!(matches!(cluster.release(id), Err(AllocError::UnknownLease(_))));
            } else {
                let bytes = gib << 30;
                match cluster.reserve_gpu(GpuId(gpu), bytes) {
                    Ok(id) => live.push(id),
                    Err(AllocError::InsufficientMemory { free, requested }) => {
                        prop_assert!(requested > free);
                    }
                    Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                }
            }
            cluster.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    /// Host-memory reservations obey per-server capacity.
    #[test]
    fn host_leases_respect_capacity(reqs in prop::collection::vec((0u32..42, 1u64..300), 1..40)) {
        let mut cluster = Cluster::new(ClusterSpec::paper_testbed());
        for (server, gib) in reqs {
            let _ = cluster.reserve_host(ServerId(server), gib << 30);
            cluster.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    /// Event queue pops are globally time-ordered with FIFO tie-breaking.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(*t), i).unwrap();
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "ties must pop in insertion order");
                }
            }
            last = Some((t, i));
        }
    }

    /// Gamma-renewal workloads hit their target CV within tolerance.
    #[test]
    fn gamma_cv_is_controllable(cv_tenths in 3u32..60, seed in 0u64..1_000) {
        let cv = f64::from(cv_tenths) / 10.0;
        let arr = gen_gamma_renewal(40.0, cv, 600.0, &mut SimRng::seed(seed));
        let measured = interarrival_cv(&arr);
        prop_assert!((measured - cv).abs() / cv < 0.25, "cv {measured} target {cv}");
    }

    /// Validity-mask algebra: union/mask/delta laws hold for arbitrary
    /// prefix pairs (the Eq. 10 operations).
    #[test]
    fn validity_mask_laws(len in 1u32..4_096, a in 0u32..4_096, b in 0u32..4_096) {
        let a = a.min(len);
        let b = b.min(len);
        let ma = ValidityMask::valid_prefix(len, a);
        let mb = ValidityMask::valid_prefix(len, b);
        let union = ma.or(&mb);
        let inter = ma.and(&mb);
        prop_assert_eq!(union.count_valid(), a.max(b));
        prop_assert_eq!(inter.count_valid(), a.min(b));
        // Inclusion-exclusion.
        prop_assert_eq!(
            union.count_valid() + inter.count_valid(),
            ma.count_valid() + mb.count_valid()
        );
        // delta ∪ smaller = larger side.
        let delta = ma.minus(&mb);
        prop_assert_eq!(delta.or(&mb).count_valid(), a.max(b).max(b));
    }

    /// Cost-model monotonicity: more tokens never compute faster; bigger
    /// ranges never need less memory.
    #[test]
    fn cost_model_is_monotone(t1 in 1u64..8_192, t2 in 1u64..8_192, cut in 1u32..63) {
        let graph = zoo::opt_66b();
        let cost = CostModel::default();
        let ranges = flexpipe::model::even_layer_ranges(&graph, 4);
        let r = ranges[1];
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        prop_assert!(cost.stage_compute(&graph, r, lo) <= cost.stage_compute(&graph, r, hi));
        let sub = OpRange::new(r.start, r.start + cut.min(r.len() - 1));
        prop_assert!(graph.range_param_bytes(sub) <= graph.range_param_bytes(r));
        prop_assert!(cost.max_batch(&graph, sub, 80 << 30) >= cost.max_batch(&graph, r, 80 << 30));
    }
}
