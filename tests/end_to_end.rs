//! Full-stack integration tests through the facade crate: workload →
//! cluster → partitioner → serving engine → FlexPipe policy → metrics.

use std::sync::Arc;

use flexpipe::prelude::*;

fn artifacts() -> (Arc<ModelGraph>, Arc<GranularityLattice>, CostModel) {
    let graph = Arc::new(flexpipe::model::zoo::llama2_7b());
    let cost = CostModel::default();
    let partitioner = Partitioner::new(PartitionParams::default(), cost);
    let lattice =
        Arc::new(GranularityLattice::build(&partitioner, &graph, 8, &[1, 2, 4, 8], &cost).unwrap());
    (graph, lattice, cost)
}

fn scenario(cv: f64, rate: f64, horizon: f64, seed: u64, cost: CostModel) -> Scenario {
    let workload = WorkloadSpec {
        arrivals: ArrivalSpec::GammaRenewal { rate, cv },
        lengths: LengthProfile::chat(),
        slo: SimDuration::from_secs(5),
        slo_per_output_token: SimDuration::from_millis(100),
        horizon_secs: horizon,
    }
    .generate(&mut SimRng::seed(seed));
    Scenario {
        config: EngineConfig::default(),
        cluster: ClusterSpec::paper_testbed(),
        background: BackgroundProfile::testbed_like(),
        tier: TierConfig::default(),
        cost,
        workload,
        disruptions: Default::default(),
        horizon: SimTime::from_secs_f64(horizon + 30.0),
        seed,
    }
}

fn flexpipe() -> Box<dyn ControlPolicy> {
    Box::new(FlexPipePolicy::new(FlexPipeConfig {
        granularity: GranularityParams {
            base_stages: 2,
            mean_prompt_tokens: 256.0,
            mean_output_tokens: 48.0,
            ..GranularityParams::default()
        },
        peak_gpus: 8,
        expected_rate: 6.0,
        ..FlexPipeConfig::default()
    }))
}

#[test]
fn flexpipe_full_stack_smoke() {
    let (graph, lattice, cost) = artifacts();
    let report = Engine::new(
        scenario(1.5, 6.0, 120.0, 3, cost),
        graph,
        lattice,
        flexpipe(),
    )
    .run();
    assert!(
        report.completion_rate() > 0.95,
        "rate {}",
        report.completion_rate()
    );
    assert!(report.summary.goodput_rate > 0.8);
    assert!(report.events > 10_000);
    // The standing fleet exists from t=0 (prewarmed init).
    assert!(report.peak_gpus_held() >= 2);
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let (graph, lattice, cost) = artifacts();
        Engine::new(
            scenario(3.0, 6.0, 90.0, 9, cost),
            graph,
            lattice,
            flexpipe(),
        )
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.completed(), b.completed());
    assert_eq!(a.events, b.events);
    assert_eq!(a.refactors, b.refactors);
    assert_eq!(a.spawns, b.spawns);
    assert!((a.summary.mean_latency - b.summary.mean_latency).abs() < 1e-12);
    assert!((a.ledger.total_busy_secs() - b.ledger.total_busy_secs()).abs() < 1e-9);
}

#[test]
fn all_baselines_serve_the_same_scenario() {
    let policies: Vec<Box<dyn ControlPolicy>> = vec![
        Box::new(StaticPipeline::new(2, 2)),
        Box::new(AlpaServeLike::new(AlpaServeConfig {
            expected_rate: 6.0,
            mean_prompt_tokens: 256.0,
            mean_output_tokens: 48.0,
            ..AlpaServeConfig::default()
        })),
        Box::new(MuxServeLike::new(MuxServeConfig {
            stages: 2,
            expected_rate: 6.0,
            mean_prompt_tokens: 256.0,
            mean_output_tokens: 48.0,
            ..MuxServeConfig::default()
        })),
        Box::new(ServerlessLlmLike::new(ServerlessLlmConfig {
            stages: 2,
            ..ServerlessLlmConfig::default()
        })),
        Box::new(TetrisLike::new(TetrisConfig {
            stages: 2,
            min_replicas: 2,
            ..TetrisConfig::default()
        })),
    ];
    for policy in policies {
        let name = policy.name();
        let (graph, lattice, cost) = artifacts();
        let report = Engine::new(scenario(2.0, 6.0, 90.0, 11, cost), graph, lattice, policy).run();
        assert!(
            report.completion_rate() > 0.5,
            "{name} completed only {:.0}%",
            report.completion_rate() * 100.0
        );
        assert_eq!(report.policy, name);
    }
}

#[test]
fn cv_shift_triggers_refactor_through_facade() {
    let (graph, lattice, cost) = artifacts();
    // Calm then violent bursts.
    let mut calm = WorkloadSpec {
        arrivals: ArrivalSpec::GammaRenewal { rate: 5.0, cv: 0.7 },
        lengths: LengthProfile::fixed(256, 24),
        slo: SimDuration::from_secs(5),
        slo_per_output_token: SimDuration::from_millis(100),
        horizon_secs: 90.0,
    }
    .generate(&mut SimRng::seed(5));
    let bursty = WorkloadSpec {
        arrivals: ArrivalSpec::Burst {
            calm_rate: 2.0,
            burst_rate: 70.0,
            calm_secs: 10.0,
            burst_secs: 5.0,
        },
        lengths: LengthProfile::fixed(256, 24),
        slo: SimDuration::from_secs(5),
        slo_per_output_token: SimDuration::from_millis(100),
        horizon_secs: 120.0,
    }
    .generate(&mut SimRng::seed(6));
    let base = calm.requests.len() as u64;
    for (i, r) in bursty.requests.iter().enumerate() {
        let mut r = *r;
        r.arrival = SimTime::from_secs(90) + (r.arrival - SimTime::ZERO);
        r.id = flexpipe::workload::RequestId(base + i as u64);
        calm.requests.push(r);
    }
    let scenario = Scenario {
        config: EngineConfig::default(),
        cluster: ClusterSpec::paper_testbed(),
        background: BackgroundProfile::testbed_like(),
        tier: TierConfig::default(),
        cost,
        workload: calm,
        disruptions: Default::default(),
        horizon: SimTime::from_secs(250),
        seed: 5,
    };
    let report = Engine::new(scenario, graph, lattice, flexpipe()).run();
    assert!(
        report.refactors >= 1 || report.spawns > 2,
        "no adaptation: refactors {} spawns {}",
        report.refactors,
        report.spawns
    );
    assert!(report.completion_rate() > 0.85);
}

#[test]
fn survives_hostile_fragmentation() {
    // Failure injection: the busiest background profile (C2-like, ~51%
    // memory occupied, churning) on the small testbed. Placements fail,
    // batch capacities shrink, churn invalidates planning assumptions —
    // the stack must degrade gracefully, never panic, and keep the cluster
    // invariants intact (checked inside the engine's debug asserts and the
    // report's consistency).
    let (graph, lattice, cost) = artifacts();
    let workload = WorkloadSpec {
        arrivals: ArrivalSpec::GammaRenewal { rate: 8.0, cv: 3.0 },
        lengths: LengthProfile::chat(),
        slo: SimDuration::from_secs(5),
        slo_per_output_token: SimDuration::from_millis(100),
        horizon_secs: 120.0,
    }
    .generate(&mut SimRng::seed(71));
    let scenario = Scenario {
        config: EngineConfig::default(),
        cluster: ClusterSpec::paper_testbed(),
        background: BackgroundProfile::c2_like(), // hostile
        tier: TierConfig::default(),
        cost,
        workload,
        disruptions: Default::default(),
        horizon: SimTime::from_secs(160),
        seed: 71,
    };
    let report = Engine::new(scenario, graph, lattice, flexpipe()).run();
    // Under this pressure some requests may wait long, but the system must
    // make real progress and account for every completion consistently.
    assert!(report.completed() > 0);
    assert!(
        report.completion_rate() > 0.3,
        "{}",
        report.completion_rate()
    );
    for o in report.outcomes.outcomes() {
        assert!(o.completion >= o.arrival);
        let parts =
            o.queue.as_secs_f64() + o.execution.as_secs_f64() + o.communication.as_secs_f64();
        let lat = o.latency().as_secs_f64();
        assert!(
            parts <= lat + 1e-6,
            "breakdown {parts} exceeds latency {lat}"
        );
    }
}

#[test]
fn survives_capacity_exhaustion() {
    // Failure injection: a 4-GPU cluster where most scale-outs must fail.
    // The policy's spawn fallback and the engine's error paths must never
    // wedge the run.
    let (graph, lattice, cost) = artifacts();
    let workload = WorkloadSpec {
        arrivals: ArrivalSpec::Burst {
            calm_rate: 2.0,
            burst_rate: 60.0,
            calm_secs: 15.0,
            burst_secs: 5.0,
        },
        lengths: LengthProfile::chat(),
        slo: SimDuration::from_secs(5),
        slo_per_output_token: SimDuration::from_millis(100),
        horizon_secs: 120.0,
    }
    .generate(&mut SimRng::seed(73));
    let scenario = Scenario {
        config: EngineConfig::default(),
        cluster: ClusterSpec::heterogeneous("tiny", 2, 4, 2),
        background: BackgroundProfile::none(),
        tier: TierConfig::default(),
        cost,
        workload,
        disruptions: Default::default(),
        horizon: SimTime::from_secs(160),
        seed: 73,
    };
    let report = Engine::new(scenario, graph, lattice, flexpipe()).run();
    assert!(report.completed() > 0);
    // The fleet can never exceed the 4 physical GPUs.
    assert!(
        report.peak_gpus_held() <= 4,
        "held {}",
        report.peak_gpus_held()
    );
}

#[test]
fn trace_replay_reproduces_run() {
    // A workload exported to CSV and replayed must produce the identical
    // simulation (artefact portability).
    let (graph, lattice, cost) = artifacts();
    let original = WorkloadSpec {
        arrivals: ArrivalSpec::GammaRenewal { rate: 6.0, cv: 2.0 },
        lengths: LengthProfile::chat(),
        slo: SimDuration::from_secs(5),
        slo_per_output_token: SimDuration::from_millis(100),
        horizon_secs: 60.0,
    }
    .generate(&mut SimRng::seed(77));
    let replayed = flexpipe::workload::from_csv(&flexpipe::workload::to_csv(&original)).unwrap();
    assert_eq!(original, replayed);

    let mk_scenario = |w| Scenario {
        config: EngineConfig::default(),
        cluster: ClusterSpec::paper_testbed(),
        background: BackgroundProfile::testbed_like(),
        tier: TierConfig::default(),
        cost,
        workload: w,
        disruptions: Default::default(),
        horizon: SimTime::from_secs(90),
        seed: 77,
    };
    let a = Engine::new(
        mk_scenario(original),
        graph.clone(),
        lattice.clone(),
        flexpipe(),
    )
    .run();
    let b = Engine::new(mk_scenario(replayed), graph, lattice, flexpipe()).run();
    assert_eq!(a.events, b.events);
    assert_eq!(a.completed(), b.completed());
}
