//! Fragmented cluster exploration: reproduce the §3.1 measurement study on
//! a synthetic Alibaba-like cluster and show how the HRG placer navigates
//! the fragmentation.
//!
//! ```sh
//! cargo run --release --example fragmented_cluster
//! ```

use flexpipe::cluster::{BackgroundTenants, Endpoint, Route};
use flexpipe::core::{AllocationOptimizer, AllocationParams, StageNeed};
use flexpipe::model::even_layer_ranges;
use flexpipe::prelude::*;

fn main() {
    // Build the C1-like inference cluster and let tenants fragment it.
    let mut cluster = Cluster::new(ClusterSpec::alibaba_c1());
    let mut bg = BackgroundTenants::new(BackgroundProfile::c1_like(), SimRng::seed(11));
    bg.populate(&mut cluster);

    let stats = BackgroundTenants::stats(&cluster);
    println!("== fragmentation snapshot (C1-like, 430 nodes / 468 GPUs) ==");
    println!(
        "GPU subscription rate:     {:.0}% (paper: 216%)",
        stats.subscription_pct
    );
    println!(
        "mean SM utilisation:       {:.1}% (paper: 16.9%)",
        stats.sm_mean
    );
    println!(
        "mean memory utilisation:   {:.1}% (paper: 43.5%)",
        stats.mem_mean
    );
    println!(
        "P(single GPU >85% free):   {:.1}% (paper: 8.7%)",
        stats.p_single_free * 100.0
    );
    println!(
        "P(4-GPU co-location):      {:.4}% (paper: 0.02%)",
        stats.p_colocate4 * 100.0
    );

    // Why tensor parallelism degrades here: transfer paths between the few
    // free GPUs are cross-server.
    let engine = TransferEngine::new(cluster.topology().spec().links);
    let cap = cluster.gpu_mem_capacity();
    let free: Vec<GpuId> = cluster.gpus_with_free(cap * 85 / 100).collect();
    if free.len() >= 2 {
        // How often can two securable GPUs talk over NVLink? Almost never —
        // that is the §3.1 argument against tensor parallelism here.
        let mut nvlink_pairs = 0usize;
        let mut pairs = 0usize;
        for (i, &a) in free.iter().enumerate() {
            for &b in &free[i + 1..] {
                pairs += 1;
                if engine.route(&cluster, Endpoint::Gpu(a), Endpoint::Gpu(b)) == Route::NvLink {
                    nvlink_pairs += 1;
                }
            }
        }
        let d = engine.duration(
            &cluster,
            Endpoint::Gpu(free[0]),
            Endpoint::Gpu(free[1]),
            1 << 30,
        );
        println!("\nsecurable GPUs: {}", free.len());
        println!(
            "securable pairs with NVLink connectivity: {nvlink_pairs}/{pairs} ({:.2}%)",
            nvlink_pairs as f64 / pairs.max(1) as f64 * 100.0
        );
        println!("example cross-pair 1 GiB transfer: {d}");
    }

    // Place an 8-stage OPT-66B pipeline with the Eq. (6)-(9) optimizer at
    // two burstiness levels and observe the isolation/consolidation switch.
    let graph = flexpipe::model::zoo::opt_66b();
    let cost = CostModel::default();
    let needs: Vec<StageNeed> = even_layer_ranges(&graph, 8)
        .into_iter()
        .map(|r| StageNeed {
            range: r,
            mem_bytes: cost.stage_mem_bytes(&graph, r, 8),
        })
        .collect();
    let optimizer = AllocationOptimizer::new(AllocationParams::default());
    let candidates: Vec<GpuId> = cluster.topology().gpus().iter().map(|g| g.id).collect();
    println!("\n== Eq. (6)-(9) placement of an 8-stage OPT-66B pipeline ==");
    for cv in [0.3, 6.0] {
        match optimizer.assign(&cluster, &graph, &cost, 0.6, &needs, &candidates, &[], cv) {
            Some(a) => {
                let shared = a
                    .gpus
                    .iter()
                    .filter(|&&g| cluster.load(g).bg_services > 0)
                    .count();
                println!(
                    "cv={cv:>3}: placed on {} GPUs, {} shared with other tenants, imbalance {:.2}",
                    a.gpus.len(),
                    shared,
                    a.imbalance
                );
            }
            None => println!("cv={cv:>3}: no feasible placement"),
        }
    }
    println!("(bursty traffic forces isolation; stable traffic tolerates consolidation)");
}
