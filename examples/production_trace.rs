//! Production trace: serve a synthetic Azure-like diurnal+burst trace with
//! FlexPipe and watch the dual-tier economics — always-on reservation,
//! elastic scaling, warm starts.
//!
//! ```sh
//! cargo run --release --example production_trace
//! ```

use std::sync::Arc;

use flexpipe::prelude::*;
use flexpipe::workload::{windowed_cv_series, TraceProfile};

fn main() {
    // One hour of an Azure-top-1-like application trace (compressed scale).
    let profile = TraceProfile {
        base_rate: 8.0,
        ..TraceProfile::azure_top1_like()
    };
    let workload = WorkloadSpec {
        arrivals: ArrivalSpec::Trace(profile),
        lengths: LengthProfile::chat(),
        slo: SimDuration::from_secs(5),
        slo_per_output_token: SimDuration::from_millis(100),
        horizon_secs: 3600.0,
    }
    .generate(&mut SimRng::seed(23));
    let arrivals: Vec<SimTime> = workload.requests.iter().map(|r| r.arrival).collect();
    let series = windowed_cv_series(
        &arrivals,
        SimDuration::from_secs(180),
        SimTime::from_secs(3600),
    );
    let max_cv = series.iter().map(|p| p.cv).fold(0.0, f64::max);
    println!(
        "trace: {} requests / 1 h, 180 s-window CV up to {max_cv:.2}",
        workload.len()
    );

    let graph = Arc::new(flexpipe::model::zoo::llama2_7b());
    let cost = CostModel::default();
    let partitioner = Partitioner::new(PartitionParams::default(), cost);
    let lattice =
        Arc::new(GranularityLattice::build(&partitioner, &graph, 8, &[1, 2, 4, 8], &cost).unwrap());
    let scenario = Scenario {
        config: EngineConfig::default(),
        cluster: ClusterSpec::paper_testbed(),
        background: BackgroundProfile::testbed_like(),
        tier: TierConfig::default(),
        cost,
        workload,
        disruptions: Default::default(),
        horizon: SimTime::from_secs(3660),
        seed: 23,
    };
    let policy = FlexPipePolicy::new(FlexPipeConfig {
        granularity: GranularityParams {
            base_stages: 2,
            mean_prompt_tokens: 256.0,
            mean_output_tokens: 48.0,
            ..GranularityParams::default()
        },
        peak_gpus: 12,
        always_on_fraction: 0.30,
        ..FlexPipeConfig::default()
    });
    let report = Engine::new(scenario, graph, lattice, Box::new(policy)).run();

    println!("\n== one hour of production-like serving ==");
    println!(
        "completed:        {}/{}",
        report.completed(),
        report.arrived
    );
    println!(
        "goodput rate:     {:.1}%",
        report.summary.goodput_rate * 100.0
    );
    println!("mean latency:     {:.2} s", report.summary.mean_latency);
    println!("refactors:        {}", report.refactors);
    println!("spawns:           {}", report.spawns);
    println!("mean GPUs held:   {:.1}", report.mean_gpus_held());
    println!("peak GPUs held:   {}", report.peak_gpus_held());
    println!(
        "warm-start loads: {:.0}%",
        report.warm_load_fraction() * 100.0
    );
    println!("mean alloc wait:  {:.2} s", report.mean_alloc_wait_secs);
    println!(
        "\nalways-on pinned: 30% of the {}-GPU peak estimate — elastic capacity follows the trace.",
        12
    );
}
