//! Programmatic use of the fleet orchestrator: build a sweep in code, run
//! it on all cores, print the comparison tables, and gate a what-if
//! variant against it.
//!
//! ```sh
//! cargo run --release --example fleet_sweep
//! ```

use flexpipe::fleet::gate::gate;
use flexpipe::prelude::*;
use flexpipe::workload::LengthProfile;

fn main() {
    // A compact grid: burstiness × two rates, FlexPipe vs. two baselines,
    // on a fragmented 16-GPU slice with testbed-like background tenants.
    let spec = SweepSpec {
        name: "example-sweep".into(),
        model: flexpipe::model::ModelId::Llama2_7B,
        seed: 42,
        horizon_secs: 60.0,
        warmup_secs: 15.0,
        slo_secs: 2.0,
        slo_per_output_token_ms: 100.0,
        background: BackgroundShape::TestbedLike,
        lengths: LengthProfile::chat(),
        max_events: 100_000_000,
        cvs: vec![1.0, 4.0],
        rates: vec![4.0, 8.0],
        clusters: vec![ClusterShape::Custom {
            nodes: 10,
            total_gpus: 16,
            servers_per_rack: 5,
        }],
        policies: vec![
            PolicySpec::Paper(SystemId::FlexPipe),
            PolicySpec::Paper(SystemId::AlpaServe),
            PolicySpec::Static {
                stages: 2,
                replicas: 2,
            },
        ],
        disruptions: vec![DisruptionShape::None],
        replicas: 1,
    };

    let report = run_sweep(&spec, &RunOptions::default()).expect("sweep runs");
    println!("{}", report.policy_table().render());
    println!("{}", report.cell_table().render());

    // Reports serve as regression baselines: rerunning the same spec
    // reproduces the artifact byte-for-byte, so a self-gate passes.
    let cfg = GateConfig::default();
    let rerun = run_sweep(
        &spec,
        &RunOptions {
            threads: 1,
            quiet: true,
            ..Default::default()
        },
    )
    .expect("rerun");
    let outcome = gate(&report, &rerun, &cfg);
    println!("{}", outcome.render(&cfg));
    assert!(outcome.passed(&cfg), "deterministic rerun must gate-pass");
}
