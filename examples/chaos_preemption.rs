//! Chaos demo: preempt the busiest server mid-run and watch FlexPipe
//! refactor inflight while a static pipeline cold-respawns.
//!
//! ```sh
//! cargo run --release --example chaos_preemption
//! ```

use std::sync::Arc;

use flexpipe::prelude::*;

fn scenario(script: DisruptionScript) -> Scenario {
    let workload = WorkloadSpec {
        arrivals: ArrivalSpec::GammaRenewal { rate: 4.0, cv: 1.0 },
        lengths: LengthProfile::fixed(128, 128),
        slo: SimDuration::from_secs(2),
        slo_per_output_token: SimDuration::from_millis(100),
        horizon_secs: 60.0,
    }
    .generate(&mut SimRng::seed(7));
    Scenario {
        config: EngineConfig::default(),
        cluster: ClusterSpec::heterogeneous("demo-8n-12g", 8, 12, 4),
        background: BackgroundProfile::none(),
        tier: TierConfig::default(),
        cost: CostModel::default(),
        workload,
        disruptions: script,
        horizon: SimTime::from_secs(90),
        seed: 7,
    }
}

fn main() {
    // The platform preempts the busiest server at t = 20 s with a 15 s
    // grace notice — the spot-market pattern (HydraServe/ParaServe).
    let script = DisruptionScript {
        name: "spot-preempt".into(),
        events: vec![DisruptionEvent {
            at_secs: 20.0,
            kind: Disruption::HotServerPreempt {
                rank: 0,
                grace_secs: 15.0,
            },
        }],
    };

    let graph = Arc::new(flexpipe::model::zoo::llama2_7b());
    let cost = CostModel::default();
    let partitioner = Partitioner::new(PartitionParams::default(), cost);
    let lattice = Arc::new(
        GranularityLattice::build(&partitioner, &graph, 8, &[1, 2, 4, 8], &cost)
            .expect("llama fits every level"),
    );

    let policies: Vec<(&str, Box<dyn ControlPolicy>)> = vec![
        ("FlexPipe", SystemId::FlexPipe.policy(4.0)),
        ("Static 2-stage", Box::new(StaticPipeline::new(2, 1))),
    ];
    println!("hot-server preemption at t=20s, grace 15s, 12-GPU cluster\n");
    for (label, policy) in policies {
        let report = Engine::new(
            scenario(script.clone()),
            graph.clone(),
            lattice.clone(),
            policy,
        )
        .run();
        let d = &report.disruptions;
        println!(
            "{label:>14}: revocations {}, gpus lost {}, requests replayed {}, tokens lost {}, \
             spawns {}, refactors {}, time-to-recover {:.2}s, goodput {:.1}%",
            d.revocation_events,
            d.gpus_revoked,
            d.requests_replayed,
            d.tokens_lost,
            report.spawns,
            report.refactors,
            d.mean_time_to_recover(),
            report.summary.goodput_rate * 100.0,
        );
    }
    println!(
        "\nFlexPipe uses the grace window to migrate stages off the doomed \
         server inflight;\nthe static pipeline ignores the notice, loses its \
         in-flight work and cold-respawns."
    );
}
