//! Bursty serving: sweep the arrival CV and compare FlexPipe against a
//! static pipeline on OPT-66B — the core trade-off the paper is about.
//!
//! ```sh
//! cargo run --release --example bursty_serving
//! ```

use std::sync::Arc;

use flexpipe::prelude::*;

fn run_policy(
    graph: &Arc<ModelGraph>,
    lattice: &Arc<GranularityLattice>,
    cost: CostModel,
    cv: f64,
    policy: Box<dyn ControlPolicy>,
) -> RunReport {
    let workload = WorkloadSpec {
        arrivals: ArrivalSpec::GammaRenewal { rate: 16.0, cv },
        lengths: LengthProfile::splitwise_like(),
        slo: SimDuration::from_secs(3),
        slo_per_output_token: SimDuration::from_millis(200),
        horizon_secs: 240.0,
    }
    .generate(&mut SimRng::seed(7));
    let scenario = Scenario {
        config: EngineConfig::default(),
        cluster: ClusterSpec::paper_testbed(),
        background: BackgroundProfile::testbed_like(),
        tier: TierConfig::default(),
        cost,
        workload,
        disruptions: Default::default(),
        horizon: SimTime::from_secs(270),
        seed: 7,
    };
    Engine::new(scenario, graph.clone(), lattice.clone(), policy).run()
}

fn main() {
    let graph = Arc::new(flexpipe::model::zoo::opt_66b());
    let cost = CostModel::default();
    let partitioner = Partitioner::new(PartitionParams::default(), cost);
    let lattice = Arc::new(
        GranularityLattice::build(&partitioner, &graph, 32, &[2, 4, 8, 16, 32], &cost)
            .expect("OPT-66B lattice"),
    );

    let mut table = Table::new(
        "FlexPipe vs static 4-stage across CV (OPT-66B, 16 QPS)",
        &[
            "CV",
            "System",
            "Goodput(%)",
            "Mean lat(s)",
            "P99(s)",
            "Refactors",
            "MeanGPUs",
        ],
    );
    for cv in [0.5, 2.0, 6.0] {
        for flex in [true, false] {
            let policy: Box<dyn ControlPolicy> = if flex {
                Box::new(FlexPipePolicy::new(FlexPipeConfig {
                    granularity: GranularityParams {
                        base_stages: 4,
                        mean_prompt_tokens: 1540.0,
                        ..GranularityParams::default()
                    },
                    peak_gpus: 16,
                    expected_rate: 16.0,
                    headroom: 2.0,
                    ..FlexPipeConfig::default()
                }))
            } else {
                Box::new(StaticPipeline::new(4, 2))
            };
            let report = run_policy(&graph, &lattice, cost, cv, policy);
            table.row(vec![
                format!("{cv}"),
                report.policy.clone(),
                format!("{:.1}", report.summary.goodput_rate * 100.0),
                format!("{:.2}", report.summary.mean_latency),
                format!("{:.2}", report.summary.p99_latency),
                report.refactors.to_string(),
                format!("{:.1}", report.mean_gpus_held()),
            ]);
        }
    }
    println!("{}", table.render());
    println!("The static pipeline cannot shed queueing at high CV; FlexPipe absorbs bursts by refactoring and fine-grained scale-out.");
}
