//! Quickstart: serve a bursty workload with FlexPipe on the paper's
//! simulated 82-GPU testbed and print the run summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use flexpipe::prelude::*;

fn main() {
    // 1. Pick a model and build its granularity lattice (the §5 offline
    //    phase: finest feasible stages + aligned merge levels).
    let graph = Arc::new(flexpipe::model::zoo::llama2_7b());
    let cost = CostModel::default();
    let partitioner = Partitioner::new(PartitionParams::default(), cost);
    let lattice = Arc::new(
        GranularityLattice::build(&partitioner, &graph, 8, &[1, 2, 4, 8], &cost)
            .expect("llama fits every level"),
    );
    println!(
        "model: {} ({:.1}B params), lattice levels: {:?}",
        graph.name(),
        graph.total_params() as f64 / 1e9,
        lattice.stage_counts()
    );

    // 2. Generate a workload: calm first, then a burst regime shift.
    let workload = WorkloadSpec {
        arrivals: ArrivalSpec::Burst {
            calm_rate: 4.0,
            burst_rate: 60.0,
            calm_secs: 30.0,
            burst_secs: 6.0,
        },
        lengths: LengthProfile::chat(),
        slo: SimDuration::from_secs(5),
        slo_per_output_token: SimDuration::from_millis(100),
        horizon_secs: 180.0,
    }
    .generate(&mut SimRng::seed(42));
    println!("workload: {} requests over 180 s", workload.len());

    // 3. Describe the cluster scenario (fragmented testbed).
    let scenario = Scenario {
        config: EngineConfig::default(),
        cluster: ClusterSpec::paper_testbed(),
        background: BackgroundProfile::testbed_like(),
        tier: TierConfig::default(),
        cost,
        workload,
        disruptions: Default::default(),
        horizon: SimTime::from_secs(220),
        seed: 42,
    };

    // 4. Run FlexPipe.
    let policy = FlexPipePolicy::new(FlexPipeConfig {
        granularity: GranularityParams {
            base_stages: 2,
            mean_prompt_tokens: 256.0,
            mean_output_tokens: 48.0,
            ..GranularityParams::default()
        },
        peak_gpus: 8,
        ..FlexPipeConfig::default()
    });
    let report = Engine::new(scenario, graph, lattice, Box::new(policy)).run();

    // 5. Inspect the outcome.
    println!("\n== run report ==");
    println!("policy:              {}", report.policy);
    println!(
        "completed:           {}/{}",
        report.completed(),
        report.arrived
    );
    println!(
        "goodput rate:        {:.1}%",
        report.summary.goodput_rate * 100.0
    );
    println!("mean latency:        {:.2} s", report.summary.mean_latency);
    println!("p99 latency:         {:.2} s", report.summary.p99_latency);
    println!("inflight refactors:  {}", report.refactors);
    println!(
        "refactor pauses:     {:.1} ms total",
        report.refactor_pause_secs * 1e3
    );
    println!("instances spawned:   {}", report.spawns);
    println!("mean GPUs held:      {:.1}", report.mean_gpus_held());
    println!(
        "warm-start loads:    {:.0}%",
        report.warm_load_fraction() * 100.0
    );
    println!("events simulated:    {}", report.events);
}
