//! FlexPipe: a full-system reproduction of *"FlexPipe: Adapting Dynamic
//! LLM Serving Through Inflight Pipeline Refactoring in Fragmented
//! Serverless Clusters"* (EuroSys '26) in Rust.
//!
//! The facade re-exports every subsystem crate:
//!
//! - [`sim`] — deterministic discrete-event engine (time, events, RNG);
//! - [`cluster`] — fragmented serverless GPU cluster model;
//! - [`model`] — operator-level LLM graphs + the Table-2-calibrated cost
//!   model;
//! - [`partition`] — the §5 constrained partitioner and granularity
//!   lattice;
//! - [`workload`] — CV-controlled arrival processes and trace synthesis;
//! - [`metrics`] — latency/goodput/stall/utilisation instrumentation;
//! - [`chaos`] — scriptable disruptions: preemptions, GPU loss, surges;
//! - [`obs`] — engine-native tracing, event registry, self-time profiler;
//! - [`serving`] — the pipelined serving engine and policy interface;
//! - [`core`] — FlexPipe itself (Eq. 4-13, Algorithm 1);
//! - [`baselines`] — AlpaServe-, MuxServe-, ServerlessLLM- and Tetris-like
//!   policies;
//! - [`mod@bench`] — the paper's figure/table harness and system registry;
//! - [`check`] — the schedule-equivalence checker: semantic trace
//!   equivalence and bounded interleaving exploration;
//! - [`fleet`] — parallel scenario-fleet orchestration: declarative
//!   sweeps (CV × rate × cluster × policy), a thread-pool grid runner,
//!   per-policy comparison reports, a regression gate, and distributed
//!   campaigns over a shared cell cache.
//!
//! The crate walk with the full dependency diagram lives in
//! `docs/ARCHITECTURE.md`.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use flexpipe::prelude::*;
//!
//! // Model + granularity lattice.
//! let graph = Arc::new(flexpipe::model::zoo::llama2_7b());
//! let cost = CostModel::default();
//! let partitioner = Partitioner::new(PartitionParams::default(), cost);
//! let lattice = Arc::new(
//!     GranularityLattice::build(&partitioner, &graph, 8, &[1, 2, 4, 8], &cost).unwrap(),
//! );
//!
//! // A 60-second bursty workload on the paper's 82-GPU testbed.
//! let workload = WorkloadSpec {
//!     arrivals: ArrivalSpec::GammaRenewal { rate: 4.0, cv: 2.0 },
//!     lengths: LengthProfile::fixed(256, 16),
//!     slo: SimDuration::from_secs(5),
//!     slo_per_output_token: SimDuration::ZERO,
//!     horizon_secs: 60.0,
//! }
//! .generate(&mut SimRng::seed(42));
//!
//! let scenario = Scenario {
//!     config: EngineConfig::default(),
//!     cluster: ClusterSpec::paper_testbed(),
//!     background: BackgroundProfile::testbed_like(),
//!     tier: TierConfig::default(),
//!     cost,
//!     workload,
//!     disruptions: Default::default(),
//!     horizon: SimTime::from_secs(90),
//!     seed: 42,
//! };
//!
//! // Serve it with FlexPipe.
//! let policy = FlexPipePolicy::new(FlexPipeConfig {
//!     granularity: GranularityParams { base_stages: 2, ..Default::default() },
//!     peak_gpus: 8,
//!     ..Default::default()
//! });
//! let report = Engine::new(scenario, graph, lattice, Box::new(policy)).run();
//! assert!(report.completed() > 0);
//! ```

pub use flexpipe_baselines as baselines;
pub use flexpipe_bench as bench;
pub use flexpipe_chaos as chaos;
pub use flexpipe_check as check;
pub use flexpipe_cluster as cluster;
pub use flexpipe_core as core;
pub use flexpipe_fleet as fleet;
pub use flexpipe_metrics as metrics;
pub use flexpipe_model as model;
pub use flexpipe_obs as obs;
pub use flexpipe_partition as partition;
pub use flexpipe_serving as serving;
pub use flexpipe_sim as sim;
pub use flexpipe_workload as workload;

/// The most common imports for building and running experiments.
pub mod prelude {
    pub use flexpipe_baselines::{
        AlpaServeConfig, AlpaServeLike, MuxServeConfig, MuxServeLike, ServerlessLlmConfig,
        ServerlessLlmLike, StaticPipeline, TetrisConfig, TetrisLike,
    };
    pub use flexpipe_bench::SystemId;
    pub use flexpipe_chaos::{Disruption, DisruptionEvent, DisruptionScript, RandomDisruptions};
    pub use flexpipe_cluster::{
        BackgroundProfile, Cluster, ClusterSpec, GpuId, ServerId, TierConfig, TransferEngine,
    };
    pub use flexpipe_core::{
        FlexPipeConfig, FlexPipePolicy, GranularityParams, Hrg, HrgParams, MigrationModel,
        ValidityMask,
    };
    pub use flexpipe_fleet::{
        run_sweep, BackgroundShape, ClusterShape, DisruptionShape, FleetReport, GateConfig,
        PolicySpec, RunOptions, SweepSpec,
    };
    pub use flexpipe_metrics::{analyze_stalls, Digest, OutcomeLog, StallConfig, Table};
    pub use flexpipe_model::{CostModel, ModelGraph, ModelId, OpRange};
    pub use flexpipe_partition::{GranularityLattice, Partition, PartitionParams, Partitioner};
    pub use flexpipe_serving::{
        ControlPolicy, Ctx, Engine, EngineConfig, InstanceState, Placement, RunReport, Scenario,
    };
    pub use flexpipe_sim::{SimDuration, SimRng, SimTime};
    pub use flexpipe_workload::{ArrivalSpec, CvEstimator, LengthProfile, Workload, WorkloadSpec};
}
